//! Pluggable run observability: the [`Recorder`] trait splits *driving* a
//! simulation from *recording* it.
//!
//! [`Sim`](crate::Sim) routes every kinematic event (activation, move,
//! wait, wake) through its recorder. Three implementations ship:
//!
//! * [`FullRecorder`] — today's complete record: one
//!   [`Timeline`](crate::Timeline) of segments per robot inside a
//!   [`Schedule`], as required by the independent validator, the SVG
//!   renderer and the adversarial theorem checks. Memory grows with the
//!   number of *moves* (`O(total segments)`, ~48 B each).
//! * [`StatsRecorder`] — constant memory per robot: wake time, current
//!   time/position, and accumulated travel. No segments are kept, which is
//!   what makes 10⁶-robot sweeps fit in memory.
//! * [`CompressedRecorder`](crate::CompressedRecorder) — complete
//!   trajectories in delta-encoded, block-compressed form (≤ 12 B/move),
//!   validated by the streaming
//!   [`validate_compressed`](crate::validate_compressed).
//!
//! The recorders are *bit-identical* on every aggregate they share
//! (makespan, completion time, per-robot wake times and travel, max/total
//! energy): the constant-memory recorders perform the same floating-point
//! additions in the same per-robot order that [`Schedule`]'s derived
//! statistics do, a property pinned by the `recorder_parity` proptest
//! suite.

use crate::{RobotId, Schedule, WakeEvent};
use freezetag_geometry::Point;

/// Receives every kinematic event of a run and answers the per-robot state
/// queries the simulation driver needs (current time/position).
///
/// All f64-returning aggregate methods must be deterministic functions of
/// the event sequence — the experiment engine's byte-identical-output
/// guarantee rests on it.
pub trait Recorder {
    /// A fresh recorder for `n` sleeping robots (robot slots `0..=n`, with
    /// the source at index 0).
    fn with_capacity(n: usize) -> Self
    where
        Self: Sized;

    /// Starts recording `robot` from `time` at `pos`.
    ///
    /// # Panics
    ///
    /// Panics if the robot was already activated.
    fn activate(&mut self, robot: RobotId, time: f64, pos: Point);

    /// Whether `robot` has been activated.
    fn is_active(&self, robot: RobotId) -> bool;

    /// Current (latest) time of `robot`, `None` if not activated.
    fn current_time(&self, robot: RobotId) -> Option<f64>;

    /// Current (latest) position of `robot`, `None` if not activated.
    fn current_pos(&self, robot: RobotId) -> Option<Point>;

    /// Records a unit-speed move of `robot` to `dest`; returns the arrival
    /// time.
    ///
    /// # Panics
    ///
    /// Panics if the robot is not activated.
    fn move_to(&mut self, robot: RobotId, dest: Point) -> f64;

    /// Hints that about `extra` more moves of `robot` are coming (drivers
    /// announce sweep sizes so segment storage can pre-allocate). Purely a
    /// capacity hint: it must never change recorded contents or any
    /// deterministic accounting. The default does nothing.
    fn reserve_moves(&mut self, robot: RobotId, extra: usize) {
        let _ = (robot, extra);
    }

    /// Records a wait of `robot` until absolute time `t` (no-op for past
    /// times).
    ///
    /// # Panics
    ///
    /// Panics if the robot is not activated.
    fn wait_until(&mut self, robot: RobotId, t: f64);

    /// Appends a wake event to the log.
    fn record_wake(&mut self, event: WakeEvent);

    /// Number of recorded wake events.
    fn wake_count(&self) -> usize;

    /// Visits the wake events from index `start` onward, in recording
    /// order. Streaming-friendly: compressed recorders decode lazily
    /// instead of exposing a slice, and drivers that poll for *new* wakes
    /// (the wave frontier) pass the count they saw last.
    fn for_each_wake_from(&self, start: usize, f: &mut dyn FnMut(&WakeEvent));

    /// Activation (wake) time of `robot`, `None` if not activated.
    fn wake_time(&self, robot: RobotId) -> Option<f64>;

    /// Total distance travelled by `robot` so far, `None` if not
    /// activated.
    fn travel(&self, robot: RobotId) -> Option<f64>;

    /// Number of activated robots.
    fn active_count(&self) -> usize;

    /// The latest wake time — the paper's *makespan*; 0 when nothing was
    /// woken.
    fn makespan(&self) -> f64 {
        // Same op sequence as `wakes.iter().map(..).fold(0.0, f64::max)`.
        let mut acc = 0.0;
        self.for_each_wake_from(0, &mut |w| acc = f64::max(acc, w.time));
        acc
    }

    /// The time the last robot finishes moving/waiting (≥ makespan).
    fn completion_time(&self) -> f64;

    /// Largest per-robot travel distance (worst-case energy).
    fn max_energy(&self) -> f64;

    /// Total travel distance over all robots.
    fn total_energy(&self) -> f64;

    /// Deterministic estimate of the recorder's heap footprint in bytes —
    /// a function of the event sequence only (no allocator introspection),
    /// so sweep output stays byte-identical across thread counts.
    fn memory_bytes(&self) -> usize;
}

/// A [`Recorder`] that can answer *where a robot was* at an arbitrary past
/// time — the random-access query the event-driven executor's co-location
/// scan and the wake-validation pass need. [`FullRecorder`] answers from
/// its timelines; [`CompressedRecorder`](crate::CompressedRecorder)
/// decodes the one block containing `t`. `StatsRecorder` keeps no
/// trajectory and deliberately does not implement this.
pub trait ReplayRecorder: Recorder {
    /// Position of `robot` at absolute time `t` (clamped before activation
    /// / after the last event), `None` if the robot was never activated.
    ///
    /// Must agree bit-for-bit with
    /// [`Timeline::position_at`](crate::Timeline::position_at) on the same
    /// event sequence.
    fn position_at(&self, robot: RobotId, t: f64) -> Option<Point>;
}

/// The complete-record implementation: a [`Schedule`] (per-robot segment
/// timelines plus the wake log). Required by `validate`, SVG export and
/// every consumer that replays trajectories.
#[derive(Debug, Clone)]
pub struct FullRecorder {
    schedule: Schedule,
}

impl FullRecorder {
    /// Read access to the recorded schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Consumes the recorder, returning the schedule.
    pub fn into_schedule(self) -> Schedule {
        self.schedule
    }

    /// The wake-event log in recording order.
    pub fn wakes(&self) -> &[WakeEvent] {
        self.schedule.wakes()
    }
}

impl Recorder for FullRecorder {
    fn with_capacity(n: usize) -> Self {
        FullRecorder {
            schedule: Schedule::new(n),
        }
    }

    fn activate(&mut self, robot: RobotId, time: f64, pos: Point) {
        self.schedule.activate(robot, time, pos);
    }

    fn is_active(&self, robot: RobotId) -> bool {
        self.schedule.timeline(robot).is_some()
    }

    fn current_time(&self, robot: RobotId) -> Option<f64> {
        self.schedule.timeline(robot).map(|tl| tl.current_time())
    }

    fn current_pos(&self, robot: RobotId) -> Option<Point> {
        self.schedule.timeline(robot).map(|tl| tl.current_pos())
    }

    fn move_to(&mut self, robot: RobotId, dest: Point) -> f64 {
        self.schedule.timeline_mut(robot).move_to(dest)
    }

    fn reserve_moves(&mut self, robot: RobotId, extra: usize) {
        self.schedule.timeline_mut(robot).reserve(extra);
    }

    fn wait_until(&mut self, robot: RobotId, t: f64) {
        self.schedule.timeline_mut(robot).wait_until(t);
    }

    fn record_wake(&mut self, event: WakeEvent) {
        self.schedule.record_wake(event);
    }

    fn wake_count(&self) -> usize {
        self.schedule.wakes().len()
    }

    fn for_each_wake_from(&self, start: usize, f: &mut dyn FnMut(&WakeEvent)) {
        for w in &self.schedule.wakes()[start..] {
            f(w);
        }
    }

    fn wake_time(&self, robot: RobotId) -> Option<f64> {
        self.schedule.timeline(robot).map(|tl| tl.start_time())
    }

    fn travel(&self, robot: RobotId) -> Option<f64> {
        self.schedule.timeline(robot).map(|tl| tl.travel())
    }

    fn active_count(&self) -> usize {
        self.schedule.active_count()
    }

    fn makespan(&self) -> f64 {
        self.schedule.makespan()
    }

    fn completion_time(&self) -> f64 {
        self.schedule.completion_time()
    }

    fn max_energy(&self) -> f64 {
        self.schedule.max_energy()
    }

    fn total_energy(&self) -> f64 {
        self.schedule.total_energy()
    }

    fn memory_bytes(&self) -> usize {
        self.schedule.memory_bytes()
    }
}

impl ReplayRecorder for FullRecorder {
    fn position_at(&self, robot: RobotId, t: f64) -> Option<Point> {
        self.schedule.timeline(robot).map(|tl| tl.position_at(t))
    }
}

const ASLEEP: f64 = f64::NAN;

/// The constant-memory implementation: flat per-robot arrays (wake time,
/// current time, current position, accumulated travel) plus the wake log.
/// No segments — trajectories cannot be replayed or validated, but every
/// aggregate statistic matches [`FullRecorder`] bit-for-bit.
#[derive(Debug, Clone)]
pub struct StatsRecorder {
    // Indexed by RobotId::index(); NaN in `wake_times` means "asleep".
    wake_times: Vec<f64>,
    times: Vec<f64>,
    pos_x: Vec<f64>,
    pos_y: Vec<f64>,
    travels: Vec<f64>,
    wakes: Vec<WakeEvent>,
    active: usize,
}

impl StatsRecorder {
    /// The wake-event log in recording order.
    pub fn wakes(&self) -> &[WakeEvent] {
        &self.wakes
    }

    /// Restores the recorder to the fresh `with_capacity(n)` state while
    /// keeping its allocations — the reuse path for worker-resident
    /// recorders serving one job after another. A recycled recorder is
    /// indistinguishable from a new one (including
    /// [`memory_bytes`](Recorder::memory_bytes), which counts lengths, not
    /// capacity).
    pub fn recycle(&mut self, n: usize) {
        self.wake_times.clear();
        self.wake_times.resize(n + 1, ASLEEP);
        self.times.clear();
        self.times.resize(n + 1, 0.0);
        self.pos_x.clear();
        self.pos_x.resize(n + 1, 0.0);
        self.pos_y.clear();
        self.pos_y.resize(n + 1, 0.0);
        self.travels.clear();
        self.travels.resize(n + 1, 0.0);
        self.wakes.clear();
        self.active = 0;
    }

    #[inline]
    fn check_active(&self, robot: RobotId) -> usize {
        let i = robot.index();
        assert!(
            !self.wake_times[i].is_nan(),
            "robot has no timeline (asleep)"
        );
        i
    }
}

impl Recorder for StatsRecorder {
    fn with_capacity(n: usize) -> Self {
        StatsRecorder {
            wake_times: vec![ASLEEP; n + 1],
            times: vec![0.0; n + 1],
            pos_x: vec![0.0; n + 1],
            pos_y: vec![0.0; n + 1],
            travels: vec![0.0; n + 1],
            wakes: Vec::new(),
            active: 0,
        }
    }

    fn activate(&mut self, robot: RobotId, time: f64, pos: Point) {
        let i = robot.index();
        assert!(self.wake_times[i].is_nan(), "robot {robot} activated twice");
        self.wake_times[i] = time;
        self.times[i] = time;
        self.pos_x[i] = pos.x;
        self.pos_y[i] = pos.y;
        self.travels[i] = 0.0;
        self.active += 1;
    }

    fn is_active(&self, robot: RobotId) -> bool {
        !self.wake_times[robot.index()].is_nan()
    }

    fn current_time(&self, robot: RobotId) -> Option<f64> {
        let i = robot.index();
        (!self.wake_times[i].is_nan()).then(|| self.times[i])
    }

    fn current_pos(&self, robot: RobotId) -> Option<Point> {
        let i = robot.index();
        (!self.wake_times[i].is_nan()).then(|| Point::new(self.pos_x[i], self.pos_y[i]))
    }

    fn move_to(&mut self, robot: RobotId, dest: Point) -> f64 {
        let i = self.check_active(robot);
        // Same operations in the same order as Timeline::move_to +
        // Timeline::travel: one dist per move, accumulated per robot.
        let d = Point::new(self.pos_x[i], self.pos_y[i]).dist(dest);
        let end = self.times[i] + d;
        self.times[i] = end;
        self.pos_x[i] = dest.x;
        self.pos_y[i] = dest.y;
        self.travels[i] += d;
        end
    }

    fn wait_until(&mut self, robot: RobotId, t: f64) {
        let i = self.check_active(robot);
        // Mirrors Timeline::wait_until: waits contribute a 0-length
        // segment, which adds exactly 0.0 travel — skipping the addition
        // keeps the per-robot travel sum bit-identical.
        if t > self.times[i] + freezetag_geometry::EPS {
            self.times[i] = t;
        }
    }

    fn record_wake(&mut self, event: WakeEvent) {
        self.wakes.push(event);
    }

    fn wake_count(&self) -> usize {
        self.wakes.len()
    }

    fn for_each_wake_from(&self, start: usize, f: &mut dyn FnMut(&WakeEvent)) {
        for w in &self.wakes[start..] {
            f(w);
        }
    }

    fn wake_time(&self, robot: RobotId) -> Option<f64> {
        let t = self.wake_times[robot.index()];
        (!t.is_nan()).then_some(t)
    }

    fn travel(&self, robot: RobotId) -> Option<f64> {
        let i = robot.index();
        (!self.wake_times[i].is_nan()).then(|| self.travels[i])
    }

    fn active_count(&self) -> usize {
        self.active
    }

    fn completion_time(&self) -> f64 {
        // Index order, exactly like Schedule::completion_time.
        (0..self.times.len())
            .filter(|&i| !self.wake_times[i].is_nan())
            .map(|i| self.times[i])
            .fold(0.0, f64::max)
    }

    fn max_energy(&self) -> f64 {
        (0..self.travels.len())
            .filter(|&i| !self.wake_times[i].is_nan())
            .map(|i| self.travels[i])
            .fold(0.0, f64::max)
    }

    fn total_energy(&self) -> f64 {
        // Per-robot travels summed in index order — the same association
        // and the same +0.0 fold Schedule::total_energy uses.
        (0..self.travels.len())
            .filter(|&i| !self.wake_times[i].is_nan())
            .map(|i| self.travels[i])
            .fold(0.0, |a, b| a + b)
    }

    fn memory_bytes(&self) -> usize {
        self.wake_times.len() * 8 * 5 + self.wakes.len() * std::mem::size_of::<WakeEvent>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive<R: Recorder>(rec: &mut R) {
        rec.activate(RobotId::SOURCE, 0.0, Point::ORIGIN);
        rec.move_to(RobotId::SOURCE, Point::new(3.0, 4.0));
        rec.record_wake(WakeEvent {
            waker: RobotId::SOURCE,
            target: RobotId::sleeper(0),
            time: 5.0,
            pos: Point::new(3.0, 4.0),
        });
        rec.activate(RobotId::sleeper(0), 5.0, Point::new(3.0, 4.0));
        rec.wait_until(RobotId::sleeper(0), 7.0);
        rec.move_to(RobotId::sleeper(0), Point::new(3.0, 0.0));
        rec.wait_until(RobotId::SOURCE, 2.0); // past: no-op
    }

    #[test]
    fn stats_and_full_agree_bitwise_on_a_scripted_run() {
        let mut full = FullRecorder::with_capacity(2);
        let mut stats = StatsRecorder::with_capacity(2);
        drive(&mut full);
        drive(&mut stats);
        assert_eq!(full.makespan().to_bits(), stats.makespan().to_bits());
        assert_eq!(
            full.completion_time().to_bits(),
            stats.completion_time().to_bits()
        );
        assert_eq!(full.max_energy().to_bits(), stats.max_energy().to_bits());
        assert_eq!(
            full.total_energy().to_bits(),
            stats.total_energy().to_bits()
        );
        for i in 0..=2 {
            let r = RobotId::from_index(i);
            assert_eq!(full.wake_time(r), stats.wake_time(r), "wake_time {r}");
            assert_eq!(
                full.travel(r).map(f64::to_bits),
                stats.travel(r).map(f64::to_bits),
                "travel {r}"
            );
            assert_eq!(full.current_time(r), stats.current_time(r));
            assert_eq!(full.current_pos(r), stats.current_pos(r));
        }
        assert_eq!(full.active_count(), 2);
        assert_eq!(stats.active_count(), 2);
        assert_eq!(full.wakes(), stats.wakes());
    }

    #[test]
    fn stats_memory_is_independent_of_move_count() {
        let mut rec = StatsRecorder::with_capacity(1);
        rec.activate(RobotId::SOURCE, 0.0, Point::ORIGIN);
        let before = rec.memory_bytes();
        for i in 0..1000 {
            rec.move_to(RobotId::SOURCE, Point::new(i as f64, 0.0));
        }
        assert_eq!(rec.memory_bytes(), before, "stats memory must not grow");

        let mut full = FullRecorder::with_capacity(1);
        full.activate(RobotId::SOURCE, 0.0, Point::ORIGIN);
        let before = full.memory_bytes();
        for i in 0..1000 {
            full.move_to(RobotId::SOURCE, Point::new(i as f64, 0.0));
        }
        assert!(full.memory_bytes() > before, "full memory must grow");
    }

    #[test]
    #[should_panic]
    fn stats_double_activation_panics() {
        let mut rec = StatsRecorder::with_capacity(1);
        rec.activate(RobotId::SOURCE, 0.0, Point::ORIGIN);
        rec.activate(RobotId::SOURCE, 1.0, Point::ORIGIN);
    }

    #[test]
    #[should_panic]
    fn stats_moving_sleeping_robot_panics() {
        let mut rec = StatsRecorder::with_capacity(1);
        rec.move_to(RobotId::sleeper(0), Point::ORIGIN);
    }
}
