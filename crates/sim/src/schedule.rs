use crate::RobotId;
use freezetag_geometry::Point;

/// One atomic leg of a robot's trajectory: a straight move at unit speed,
/// or a wait (when `from == to`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Departure time.
    pub start_time: f64,
    /// Arrival time.
    pub end_time: f64,
    /// Departure position.
    pub from: Point,
    /// Arrival position.
    pub to: Point,
}

impl Segment {
    /// Whether this segment is a wait at a fixed position.
    pub fn is_wait(&self) -> bool {
        self.from.approx_eq(self.to)
    }

    /// Distance travelled (0 for waits).
    pub fn length(&self) -> f64 {
        self.from.dist(self.to)
    }

    /// Duration of the segment.
    pub fn duration(&self) -> f64 {
        self.end_time - self.start_time
    }

    /// Position at absolute time `t`, clamped to the segment's interval.
    pub fn position_at(&self, t: f64) -> Point {
        if self.duration() <= freezetag_geometry::EPS {
            return self.to;
        }
        let u = ((t - self.start_time) / self.duration()).clamp(0.0, 1.0);
        self.from.lerp(self.to, u)
    }
}

/// The full trajectory of one robot from its wake-up time onward.
///
/// Timelines are built incrementally by [`crate::Sim`]; they always remain
/// contiguous in both time and space, and every move runs at exactly unit
/// speed.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    robot: RobotId,
    start_time: f64,
    start_pos: Point,
    segments: Vec<Segment>,
}

impl Timeline {
    /// A fresh timeline for a robot waking at `start_time` at `start_pos`.
    pub fn new(robot: RobotId, start_time: f64, start_pos: Point) -> Self {
        Timeline {
            robot,
            start_time,
            start_pos,
            segments: Vec::new(),
        }
    }

    /// The robot this timeline belongs to.
    pub fn robot(&self) -> RobotId {
        self.robot
    }

    /// Wake-up (activation) time.
    pub fn start_time(&self) -> f64 {
        self.start_time
    }

    /// Initial position.
    pub fn start_pos(&self) -> Point {
        self.start_pos
    }

    /// Recorded segments in chronological order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Current (latest) time.
    pub fn current_time(&self) -> f64 {
        self.segments.last().map_or(self.start_time, |s| s.end_time)
    }

    /// Current (latest) position.
    pub fn current_pos(&self) -> Point {
        self.segments.last().map_or(self.start_pos, |s| s.to)
    }

    /// Appends a unit-speed move to `dest`; returns the arrival time.
    pub fn move_to(&mut self, dest: Point) -> f64 {
        let from = self.current_pos();
        let start = self.current_time();
        let end = start + from.dist(dest);
        self.segments.push(Segment {
            start_time: start,
            end_time: end,
            from,
            to: dest,
        });
        end
    }

    /// Appends a wait until absolute time `t` (no-op when `t` is in the
    /// past, which keeps barrier joins simple).
    pub fn wait_until(&mut self, t: f64) {
        let now = self.current_time();
        if t > now + freezetag_geometry::EPS {
            let pos = self.current_pos();
            self.segments.push(Segment {
                start_time: now,
                end_time: t,
                from: pos,
                to: pos,
            });
        }
    }

    /// Total distance travelled — the robot's energy consumption in the
    /// paper's model. Folded from `+0.0` (not `Sum`'s `-0.0` identity) so
    /// a never-moving robot reports bit-exact `+0.0`, matching the
    /// constant-memory recorder's accumulator.
    pub fn travel(&self) -> f64 {
        self.segments
            .iter()
            .map(Segment::length)
            .fold(0.0, |a, b| a + b)
    }

    /// Appends a physically impossible segment (10 units of distance in 1
    /// unit of time) so the validator tests have something to catch.
    #[cfg(test)]
    pub(crate) fn segments_tamper_for_test(&mut self) {
        let now = self.current_time();
        let pos = self.current_pos();
        self.segments.push(Segment {
            start_time: now,
            end_time: now + 1.0,
            from: pos,
            to: pos + Point::new(10.0, 0.0),
        });
    }

    /// Position at absolute time `t` (clamped before activation / after the
    /// last segment).
    ///
    /// Segment end times are nondecreasing (timelines are contiguous), so
    /// the containing segment is found by binary search — the validator
    /// resolves one of these per wake event, and a linear scan over a
    /// team lead's hundred-thousand-segment timeline was quadratic there.
    pub fn position_at(&self, t: f64) -> Point {
        if t <= self.start_time || self.segments.is_empty() {
            return if self.segments.is_empty() {
                self.current_pos()
            } else {
                self.start_pos
            };
        }
        let k = self.segments.partition_point(|s| s.end_time < t);
        match self.segments.get(k) {
            Some(s) => s.position_at(t),
            None => self.current_pos(),
        }
    }

    /// Pre-allocates room for `extra` more segments (hot drivers hint the
    /// known size of an upcoming sweep so mid-sweep reallocation copies
    /// disappear). Capacity never affects recorded contents or the
    /// length-based [`Schedule::memory_bytes`] accounting.
    pub fn reserve(&mut self, extra: usize) {
        self.segments.reserve(extra);
    }
}

/// A robot-wake event: `waker` woke `target` at `time` at position `pos`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WakeEvent {
    /// The already-awake robot performing the wake.
    pub waker: RobotId,
    /// The sleeping robot being woken.
    pub target: RobotId,
    /// Absolute time of the wake.
    pub time: f64,
    /// Position where it happened (the target's initial position).
    pub pos: Point,
}

/// The complete record of a simulation run: one timeline per awake robot
/// plus the wake-event log. The validator replays this record against the
/// revealed instance.
#[derive(Debug, Clone)]
pub struct Schedule {
    timelines: Vec<Option<Timeline>>, // indexed by RobotId::index()
    wakes: Vec<WakeEvent>,
}

impl Schedule {
    /// An empty schedule for `n` sleeping robots (capacity `n + 1` with the
    /// source at index 0).
    pub fn new(n: usize) -> Self {
        Schedule {
            timelines: vec![None; n + 1],
            wakes: Vec::new(),
        }
    }

    /// Starts a timeline for `robot`.
    ///
    /// # Panics
    ///
    /// Panics if the robot already has a timeline.
    pub fn activate(&mut self, robot: RobotId, time: f64, pos: Point) {
        let slot = &mut self.timelines[robot.index()];
        assert!(slot.is_none(), "robot {robot} activated twice");
        *slot = Some(Timeline::new(robot, time, pos));
    }

    /// The timeline of `robot`, if awake.
    pub fn timeline(&self, robot: RobotId) -> Option<&Timeline> {
        self.timelines[robot.index()].as_ref()
    }

    /// Mutable access to the timeline of `robot`.
    ///
    /// # Panics
    ///
    /// Panics if the robot has no timeline (is still asleep).
    pub fn timeline_mut(&mut self, robot: RobotId) -> &mut Timeline {
        self.timelines[robot.index()]
            .as_mut()
            .unwrap_or_else(|| panic!("robot has no timeline (asleep)"))
    }

    /// All started timelines.
    pub fn timelines(&self) -> impl Iterator<Item = &Timeline> {
        self.timelines.iter().filter_map(Option::as_ref)
    }

    /// Records a wake event.
    pub fn record_wake(&mut self, event: WakeEvent) {
        self.wakes.push(event);
    }

    /// The wake-event log in recording order.
    pub fn wakes(&self) -> &[WakeEvent] {
        &self.wakes
    }

    /// The latest wake time — the paper's *makespan* (time until the last
    /// robot is awake). 0 when nothing was woken.
    pub fn makespan(&self) -> f64 {
        self.wakes.iter().map(|w| w.time).fold(0.0, f64::max)
    }

    /// The time the last robot finishes moving/waiting (≥ makespan).
    pub fn completion_time(&self) -> f64 {
        self.timelines()
            .map(Timeline::current_time)
            .fold(0.0, f64::max)
    }

    /// Largest per-robot travel distance — the worst-case energy
    /// consumption, bounded by `B` in the energy-constrained model.
    pub fn max_energy(&self) -> f64 {
        self.timelines().map(Timeline::travel).fold(0.0, f64::max)
    }

    /// Total travel distance over all robots (`+0.0` fold, see
    /// [`Timeline::travel`]).
    pub fn total_energy(&self) -> f64 {
        self.timelines()
            .map(Timeline::travel)
            .fold(0.0, |a, b| a + b)
    }

    /// Number of robots with a started timeline (awake robots).
    pub fn active_count(&self) -> usize {
        self.timelines().count()
    }

    /// Deterministic estimate of the schedule's heap footprint in bytes:
    /// slot array plus recorded segments plus the wake log. Counts lengths,
    /// not capacities, so the value depends only on the event sequence.
    pub fn memory_bytes(&self) -> usize {
        self.timelines.len() * std::mem::size_of::<Option<Timeline>>()
            + self
                .timelines()
                .map(|tl| std::mem::size_of_val(tl.segments()))
                .sum::<usize>()
            + self.wakes.len() * std::mem::size_of::<WakeEvent>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_moves_at_unit_speed() {
        let mut t = Timeline::new(RobotId::SOURCE, 0.0, Point::ORIGIN);
        let arrival = t.move_to(Point::new(3.0, 4.0));
        assert_eq!(arrival, 5.0);
        assert_eq!(t.current_time(), 5.0);
        assert_eq!(t.current_pos(), Point::new(3.0, 4.0));
        assert_eq!(t.travel(), 5.0);
    }

    #[test]
    fn wait_until_past_is_noop() {
        let mut t = Timeline::new(RobotId::SOURCE, 10.0, Point::ORIGIN);
        t.wait_until(5.0);
        assert_eq!(t.segments().len(), 0);
        t.wait_until(12.0);
        assert_eq!(t.current_time(), 12.0);
        assert_eq!(t.travel(), 0.0);
        assert!(t.segments()[0].is_wait());
    }

    #[test]
    fn position_at_interpolates() {
        let mut t = Timeline::new(RobotId::SOURCE, 0.0, Point::ORIGIN);
        t.move_to(Point::new(10.0, 0.0));
        t.wait_until(15.0);
        t.move_to(Point::new(10.0, 5.0));
        assert_eq!(t.position_at(-1.0), Point::ORIGIN);
        assert_eq!(t.position_at(4.0), Point::new(4.0, 0.0));
        assert_eq!(t.position_at(12.0), Point::new(10.0, 0.0));
        assert_eq!(t.position_at(17.0), Point::new(10.0, 2.0));
        assert_eq!(t.position_at(100.0), Point::new(10.0, 5.0));
    }

    #[test]
    fn schedule_bookkeeping() {
        let mut s = Schedule::new(2);
        s.activate(RobotId::SOURCE, 0.0, Point::ORIGIN);
        s.timeline_mut(RobotId::SOURCE)
            .move_to(Point::new(1.0, 0.0));
        s.record_wake(WakeEvent {
            waker: RobotId::SOURCE,
            target: RobotId::sleeper(0),
            time: 1.0,
            pos: Point::new(1.0, 0.0),
        });
        s.activate(RobotId::sleeper(0), 1.0, Point::new(1.0, 0.0));
        s.timeline_mut(RobotId::sleeper(0))
            .move_to(Point::new(1.0, 2.0));
        assert_eq!(s.makespan(), 1.0);
        assert_eq!(s.completion_time(), 3.0);
        assert_eq!(s.max_energy(), 2.0);
        assert_eq!(s.total_energy(), 3.0);
        assert_eq!(s.active_count(), 2);
        assert!(s.timeline(RobotId::sleeper(1)).is_none());
    }

    #[test]
    #[should_panic]
    fn double_activation_panics() {
        let mut s = Schedule::new(1);
        s.activate(RobotId::SOURCE, 0.0, Point::ORIGIN);
        s.activate(RobotId::SOURCE, 1.0, Point::ORIGIN);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Random move/wait programs always yield continuous, unit-
            /// speed timelines whose travel equals the sum of move lengths
            /// and whose `position_at` is consistent with segment ends.
            #[test]
            fn timeline_kinematics(
                start in (-10.0f64..10.0, -10.0f64..10.0),
                ops in prop::collection::vec(
                    prop_oneof![
                        ((-20.0f64..20.0), (-20.0f64..20.0)).prop_map(|(x, y)| Some(Point::new(x, y))),
                        (0.0f64..30.0).prop_map(|_| None),
                    ],
                    1..20,
                ),
                waits in prop::collection::vec(0.0f64..30.0, 1..20),
            ) {
                let mut t = Timeline::new(RobotId::SOURCE, 0.0, Point::new(start.0, start.1));
                let mut expected_travel = 0.0;
                let mut wi = 0;
                for op in &ops {
                    match op {
                        Some(dest) => {
                            expected_travel += t.current_pos().dist(*dest);
                            t.move_to(*dest);
                        }
                        None => {
                            let until = t.current_time() + waits[wi % waits.len()];
                            t.wait_until(until);
                            wi += 1;
                        }
                    }
                }
                prop_assert!((t.travel() - expected_travel).abs() < 1e-6);
                // Continuity and unit speed.
                let mut time = t.start_time();
                let mut pos = t.start_pos();
                for s in t.segments() {
                    prop_assert!((s.start_time - time).abs() < 1e-9);
                    prop_assert!(s.from.approx_eq(pos));
                    prop_assert!(s.length() <= s.duration() + 1e-9);
                    time = s.end_time;
                    pos = s.to;
                }
                // position_at at segment boundaries.
                for s in t.segments() {
                    prop_assert!(t.position_at(s.end_time).dist(s.to) < 1e-6
                        || s.duration() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn segment_helpers() {
        let seg = Segment {
            start_time: 2.0,
            end_time: 7.0,
            from: Point::ORIGIN,
            to: Point::new(5.0, 0.0),
        };
        assert!(!seg.is_wait());
        assert_eq!(seg.length(), 5.0);
        assert_eq!(seg.duration(), 5.0);
        assert_eq!(seg.position_at(4.0), Point::new(2.0, 0.0));
    }
}
