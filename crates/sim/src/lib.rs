//! Continuous-time Look-Compute-Move simulation substrate for the
//! distributed Freeze Tag Problem.
//!
//! The paper's model (Section 1.2): awake robots move at unit speed, take
//! *discrete* snapshots that reveal robots within Euclidean distance 1,
//! wake a sleeping robot by co-location, share memory only when co-located,
//! and know a global clock and coordinate system. Moving a distance δ takes
//! δ time and δ energy.
//!
//! This crate enforces that model through three layers:
//!
//! 1. **Sensing** — the [`WorldView`] trait is the *only* channel through
//!    which an algorithm learns robot positions. [`ConcreteWorld`] serves a
//!    fixed instance; [`AdversarialWorld`] plays the adaptive adversary of
//!    Theorems 2 and 3 (robots are pinned to the last explored cell of
//!    their disk).
//! 2. **Scheduling** — a [`Sim`] driver records every move/wait into
//!    per-robot [`Timeline`]s, tracking time and energy exactly.
//! 3. **Validation** — [`validate`] independently re-checks a finished
//!    [`Schedule`]: timeline continuity, unit speed, motion only after
//!    wake-up, wake co-location, full coverage, energy budgets.
//!
//! A fourth, orthogonal layer is **deterministic intra-job parallelism**
//! ([`par`]): a [`ParPool`] of scoped threads that worlds and drivers use
//! to fan pure batches of work (sensing queries, grid-build key passes)
//! out over cores with an order-preserving merge, so a run's output is
//! bit-identical at any thread count — see [`Sim::with_pool`] and
//! [`WorldView::look_batch_into`].
//!
//! # Example
//!
//! ```
//! use freezetag_geometry::Point;
//! use freezetag_instances::Instance;
//! use freezetag_sim::{ConcreteWorld, RobotId, Sim, WorldView};
//!
//! let inst = Instance::new(vec![Point::new(0.5, 0.0)]);
//! let mut sim = Sim::new(ConcreteWorld::new(&inst));
//! let seen = sim.look(RobotId::SOURCE);
//! assert_eq!(seen.len(), 1);
//! sim.move_to(RobotId::SOURCE, seen[0].pos);
//! let woken = sim.wake(RobotId::SOURCE, seen[0].id);
//! assert_eq!(woken, seen[0].id);
//! assert!(sim.world().all_awake());
//! ```

#![warn(missing_docs)]

mod adversary;
pub mod cancel;
mod compress;
mod error;
pub mod events;
mod id;
pub mod par;
mod record;
mod schedule;
#[allow(clippy::module_inception)]
mod sim;
pub mod svg;
mod trace;
mod validate;
mod world;

pub use adversary::AdversarialWorld;
pub use cancel::{catch_cancel, CancelToken, Cancelled, DEADLINE_STRIDE};
pub use compress::{
    CompressedRecorder, SegmentIter, WakeIter, SEG_BLOCK_EVENTS, WAKE_BLOCK_EVENTS,
};
pub use error::SimError;
pub use id::RobotId;
pub use par::ParPool;
pub use record::{FullRecorder, Recorder, ReplayRecorder, StatsRecorder};
pub use schedule::{Schedule, Segment, Timeline, WakeEvent};
pub use sim::Sim;
pub use trace::{Trace, TraceSpan};
pub use validate::{validate, validate_compressed, ValidationOptions, ValidationReport};
pub use world::{ConcreteWorld, Sighting, WorldView};
