use crate::record::ReplayRecorder;
use crate::{CompressedRecorder, Recorder, RobotId, Schedule, SimError};
use freezetag_geometry::Point;

/// Tolerances and requirements for schedule validation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationOptions {
    /// Per-robot energy budget `B`, if the run claims one.
    pub energy_budget: Option<f64>,
    /// Require every robot to be awake at the end.
    pub require_all_awake: bool,
    /// Absolute tolerance on positions/times/speed (float slack).
    pub tolerance: f64,
}

impl Default for ValidationOptions {
    fn default() -> Self {
        ValidationOptions {
            energy_budget: None,
            require_all_awake: true,
            tolerance: 1e-6,
        }
    }
}

/// Summary of a successfully validated run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationReport {
    /// Time the last robot was woken (the paper's makespan).
    pub makespan: f64,
    /// Time the last robot stopped moving/waiting.
    pub completion_time: f64,
    /// Largest per-robot travel distance (worst-case energy).
    pub max_energy: f64,
    /// Total travel distance of the swarm.
    pub total_energy: f64,
    /// Robots awake at the end (including the source).
    pub robots_awake: usize,
    /// Number of wake events.
    pub wake_count: usize,
}

/// Independently re-checks a finished [`Schedule`] against the model of
/// Section 1.2:
///
/// * the source starts at time 0 at `source`;
/// * every timeline is contiguous in time and space, and every segment
///   respects unit speed (`length ≤ duration + tol`);
/// * every non-source timeline is introduced by exactly one wake event, at
///   the robot's initial position, performed by a robot that was awake and
///   co-located at that moment;
/// * (optional) every robot is awake at the end;
/// * (optional) every robot's travel is within the energy budget.
///
/// `initial_positions[i]` must be the initial position of
/// `RobotId::sleeper(i)` — for adversarial worlds, the positions revealed
/// at the end of the run.
///
/// # Errors
///
/// Returns the first [`SimError`] found; the schedule is only trusted when
/// the result is `Ok`.
pub fn validate(
    schedule: &Schedule,
    source: Point,
    initial_positions: &[Point],
    opts: &ValidationOptions,
) -> Result<ValidationReport, SimError> {
    let tol = opts.tolerance;
    let n = initial_positions.len();

    // --- source timeline -------------------------------------------------
    let src = schedule
        .timeline(RobotId::SOURCE)
        .ok_or_else(|| SimError::InvalidTimeline("source has no timeline".into()))?;
    if src.start_time() != 0.0 {
        return Err(SimError::InvalidTimeline(format!(
            "source starts at t={} instead of 0",
            src.start_time()
        )));
    }
    if src.start_pos().dist(source) > tol {
        return Err(SimError::InvalidTimeline(
            "source timeline does not start at the source position".into(),
        ));
    }

    // --- per-timeline kinematics -----------------------------------------
    // One fused pass per timeline: the replay checks share their segment
    // loads (and single per-segment `dist`) with the travel/completion
    // accumulation that ValidationReport needs — the folds run in the
    // exact order and with the exact operations of `Timeline::travel` and
    // the `Schedule` statistics, so the report is bit-identical to the
    // separate passes it replaces.
    let mut travels: Vec<f64> = Vec::with_capacity(schedule.active_count());
    let mut completion = 0.0f64;
    let mut max_energy = 0.0f64;
    let mut total_energy = 0.0f64;
    for tl in schedule.timelines() {
        let mut t = tl.start_time();
        let mut pos = tl.start_pos();
        if let Some(i) = tl.robot().sleeper_index() {
            let expect = initial_positions[i];
            if pos.dist(expect) > tol {
                return Err(SimError::InvalidTimeline(format!(
                    "robot {} starts at {} instead of its initial position {}",
                    tl.robot(),
                    pos,
                    expect
                )));
            }
        }
        let mut travel = 0.0f64;
        for (k, s) in tl.segments().iter().enumerate() {
            if (s.start_time - t).abs() > tol {
                return Err(SimError::InvalidTimeline(format!(
                    "robot {} segment {k} starts at {} expected {}",
                    tl.robot(),
                    s.start_time,
                    t
                )));
            }
            // Bit-equal endpoints (the recorder's normal output) skip the
            // continuity distance entirely; the comparison outcome is the
            // same either way since equal points are at distance 0.
            if (s.from.x != pos.x || s.from.y != pos.y) && s.from.dist(pos) > tol {
                return Err(SimError::InvalidTimeline(format!(
                    "robot {} segment {k} teleports from {} to {}",
                    tl.robot(),
                    pos,
                    s.from
                )));
            }
            if s.end_time < s.start_time - tol {
                return Err(SimError::InvalidTimeline(format!(
                    "robot {} segment {k} goes back in time",
                    tl.robot()
                )));
            }
            let length = s.length();
            if length > s.duration() + tol {
                return Err(SimError::InvalidTimeline(format!(
                    "robot {} segment {k} exceeds unit speed: length {} in {}",
                    tl.robot(),
                    length,
                    s.duration()
                )));
            }
            travel += length;
            t = s.end_time;
            pos = s.to;
        }
        completion = f64::max(completion, t);
        max_energy = f64::max(max_energy, travel);
        total_energy += travel;
        travels.push(travel);
    }

    // --- wake events -------------------------------------------------------
    let mut woken = vec![false; n];
    for (k, w) in schedule.wakes().iter().enumerate() {
        let i = w.target.sleeper_index().ok_or_else(|| {
            SimError::InvalidTimeline(format!("wake event {k} targets the source"))
        })?;
        if woken[i] {
            return Err(SimError::AlreadyAwake(w.target));
        }
        woken[i] = true;
        if w.pos.dist(initial_positions[i]) > tol {
            return Err(SimError::InvalidTimeline(format!(
                "wake event {k}: position {} is not {}'s initial position",
                w.pos, w.target
            )));
        }
        let target_tl = schedule.timeline(w.target).ok_or_else(|| {
            SimError::InvalidTimeline(format!("woken robot {} has no timeline", w.target))
        })?;
        if (target_tl.start_time() - w.time).abs() > tol {
            return Err(SimError::InvalidTimeline(format!(
                "robot {} timeline starts at {} but was woken at {}",
                w.target,
                target_tl.start_time(),
                w.time
            )));
        }
        let waker_tl = schedule
            .timeline(w.waker)
            .ok_or(SimError::Asleep(w.waker))?;
        if waker_tl.start_time() > w.time + tol {
            return Err(SimError::Asleep(w.waker));
        }
        let wp = waker_tl.position_at(w.time);
        let d = wp.dist(w.pos);
        if d > tol {
            return Err(SimError::NotColocated {
                waker: w.waker,
                target: w.target,
                distance: d,
            });
        }
    }
    // Every non-source timeline must correspond to a wake event.
    for tl in schedule.timelines() {
        if let Some(i) = tl.robot().sleeper_index() {
            if !woken[i] {
                return Err(SimError::InvalidTimeline(format!(
                    "robot {} has a timeline but no wake event",
                    tl.robot()
                )));
            }
        }
    }

    // --- coverage ----------------------------------------------------------
    let awake = schedule.active_count();
    if opts.require_all_awake && awake != n + 1 {
        return Err(SimError::NotAllAwake {
            asleep: n + 1 - awake,
        });
    }

    // --- energy ------------------------------------------------------------
    if let Some(budget) = opts.energy_budget {
        for (tl, &spent) in schedule.timelines().zip(&travels) {
            if spent > budget + tol {
                return Err(SimError::EnergyExceeded {
                    robot: tl.robot(),
                    spent,
                    budget,
                });
            }
        }
    }

    Ok(ValidationReport {
        makespan: schedule.makespan(),
        completion_time: completion,
        max_energy,
        total_energy,
        robots_awake: awake,
        wake_count: schedule.wakes().len(),
    })
}

/// Streaming counterpart of [`validate`] over a [`CompressedRecorder`]:
/// performs the same checks in the same order with the same tolerance
/// semantics, but decodes one compression block per robot at a time, so
/// peak validation memory is `O(block)` instead of `O(total segments)`.
///
/// The accumulated report runs the exact folds of the fused pass in
/// [`validate`] — per-segment travel additions in timeline order, `f64::max`
/// completion/energy folds in robot-index order — so on the same event
/// sequence the two validators return bit-identical reports (pinned by the
/// `compressed_roundtrip` and `recorder_parity` suites).
///
/// # Errors
///
/// Returns the first [`SimError`] found; the run is only trusted when the
/// result is `Ok`.
pub fn validate_compressed(
    rec: &CompressedRecorder,
    source: Point,
    initial_positions: &[Point],
    opts: &ValidationOptions,
) -> Result<ValidationReport, SimError> {
    let tol = opts.tolerance;
    let n = initial_positions.len();

    // --- source ----------------------------------------------------------
    let src_start = rec
        .wake_time(RobotId::SOURCE)
        .ok_or_else(|| SimError::InvalidTimeline("source has no timeline".into()))?;
    if src_start != 0.0 {
        return Err(SimError::InvalidTimeline(format!(
            "source starts at t={src_start} instead of 0"
        )));
    }
    let src_pos = rec.start_pos(RobotId::SOURCE).expect("source is active");
    if src_pos.dist(source) > tol {
        return Err(SimError::InvalidTimeline(
            "source timeline does not start at the source position".into(),
        ));
    }

    // --- per-timeline kinematics ------------------------------------------
    // Identical fused pass to `validate`, fed by the block-local segment
    // decoder: robot-index order matches `Schedule::timelines()`, and the
    // per-segment ops (one `dist` per segment, `travel += length`) are the
    // ones the flat validator runs — the report stays bit-identical.
    let mut travels: Vec<f64> = Vec::with_capacity(rec.active_count());
    let mut completion = 0.0f64;
    let mut max_energy = 0.0f64;
    let mut total_energy = 0.0f64;
    for idx in 0..=n {
        let robot = RobotId::from_index(idx);
        let Some(start) = rec.wake_time(robot) else {
            continue;
        };
        let mut t = start;
        let mut pos = rec.start_pos(robot).expect("active robot has a start");
        if let Some(i) = robot.sleeper_index() {
            let expect = initial_positions[i];
            if pos.dist(expect) > tol {
                return Err(SimError::InvalidTimeline(format!(
                    "robot {robot} starts at {pos} instead of its initial position {expect}"
                )));
            }
        }
        let mut travel = 0.0f64;
        for (k, s) in rec.segments(robot).enumerate() {
            if (s.start_time - t).abs() > tol {
                return Err(SimError::InvalidTimeline(format!(
                    "robot {robot} segment {k} starts at {} expected {t}",
                    s.start_time
                )));
            }
            if (s.from.x != pos.x || s.from.y != pos.y) && s.from.dist(pos) > tol {
                return Err(SimError::InvalidTimeline(format!(
                    "robot {robot} segment {k} teleports from {pos} to {}",
                    s.from
                )));
            }
            if s.end_time < s.start_time - tol {
                return Err(SimError::InvalidTimeline(format!(
                    "robot {robot} segment {k} goes back in time"
                )));
            }
            let length = s.length();
            if length > s.duration() + tol {
                return Err(SimError::InvalidTimeline(format!(
                    "robot {robot} segment {k} exceeds unit speed: length {length} in {}",
                    s.duration()
                )));
            }
            travel += length;
            t = s.end_time;
            pos = s.to;
        }
        completion = f64::max(completion, t);
        max_energy = f64::max(max_energy, travel);
        total_energy += travel;
        travels.push(travel);
    }

    // --- wake events -------------------------------------------------------
    let mut woken = vec![false; n];
    for (k, w) in rec.wake_events_from(0).enumerate() {
        let i = w.target.sleeper_index().ok_or_else(|| {
            SimError::InvalidTimeline(format!("wake event {k} targets the source"))
        })?;
        if woken[i] {
            return Err(SimError::AlreadyAwake(w.target));
        }
        woken[i] = true;
        if w.pos.dist(initial_positions[i]) > tol {
            return Err(SimError::InvalidTimeline(format!(
                "wake event {k}: position {} is not {}'s initial position",
                w.pos, w.target
            )));
        }
        let target_start = rec.wake_time(w.target).ok_or_else(|| {
            SimError::InvalidTimeline(format!("woken robot {} has no timeline", w.target))
        })?;
        if (target_start - w.time).abs() > tol {
            return Err(SimError::InvalidTimeline(format!(
                "robot {} timeline starts at {target_start} but was woken at {}",
                w.target, w.time
            )));
        }
        let waker_start = rec.wake_time(w.waker).ok_or(SimError::Asleep(w.waker))?;
        if waker_start > w.time + tol {
            return Err(SimError::Asleep(w.waker));
        }
        let wp = rec.position_at(w.waker, w.time).expect("waker is active");
        let d = wp.dist(w.pos);
        if d > tol {
            return Err(SimError::NotColocated {
                waker: w.waker,
                target: w.target,
                distance: d,
            });
        }
    }
    // Every non-source timeline must correspond to a wake event.
    for (i, &w) in woken.iter().enumerate() {
        if rec.is_active(RobotId::sleeper(i)) && !w {
            return Err(SimError::InvalidTimeline(format!(
                "robot {} has a timeline but no wake event",
                RobotId::sleeper(i)
            )));
        }
    }

    // --- coverage ----------------------------------------------------------
    let awake = rec.active_count();
    if opts.require_all_awake && awake != n + 1 {
        return Err(SimError::NotAllAwake {
            asleep: n + 1 - awake,
        });
    }

    // --- energy ------------------------------------------------------------
    if let Some(budget) = opts.energy_budget {
        let mut ti = 0;
        for idx in 0..=n {
            let robot = RobotId::from_index(idx);
            if !rec.is_active(robot) {
                continue;
            }
            let spent = travels[ti];
            ti += 1;
            if spent > budget + tol {
                return Err(SimError::EnergyExceeded {
                    robot,
                    spent,
                    budget,
                });
            }
        }
    }

    Ok(ValidationReport {
        makespan: rec.makespan(),
        completion_time: completion,
        max_energy,
        total_energy,
        robots_awake: awake,
        wake_count: rec.wake_count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConcreteWorld, Sim};
    use freezetag_instances::Instance;

    fn run_two_robot_chain() -> (Schedule, Vec<Point>) {
        let inst = Instance::new(vec![Point::new(1.0, 0.0), Point::new(2.0, 0.0)]);
        let positions = inst.positions().to_vec();
        let mut sim = Sim::new(ConcreteWorld::new(&inst));
        sim.move_to(RobotId::SOURCE, Point::new(1.0, 0.0));
        let r0 = sim.wake(RobotId::SOURCE, RobotId::sleeper(0));
        sim.move_to(r0, Point::new(2.0, 0.0));
        sim.wake(r0, RobotId::sleeper(1));
        let (_, schedule, _) = sim.into_parts();
        (schedule, positions)
    }

    #[test]
    fn valid_run_passes() {
        let (schedule, positions) = run_two_robot_chain();
        let rep = validate(
            &schedule,
            Point::ORIGIN,
            &positions,
            &ValidationOptions::default(),
        )
        .expect("valid run");
        assert_eq!(rep.wake_count, 2);
        assert_eq!(rep.robots_awake, 3);
        assert!((rep.makespan - 2.0).abs() < 1e-9);
        assert!((rep.max_energy - 1.0).abs() < 1e-9);
        assert!((rep.total_energy - 2.0).abs() < 1e-9);
    }

    #[test]
    fn energy_budget_is_enforced() {
        let (schedule, positions) = run_two_robot_chain();
        let opts = ValidationOptions {
            energy_budget: Some(0.5),
            ..Default::default()
        };
        let err = validate(&schedule, Point::ORIGIN, &positions, &opts).unwrap_err();
        assert!(matches!(err, SimError::EnergyExceeded { .. }));
    }

    #[test]
    fn incomplete_run_fails_when_required() {
        let inst = Instance::new(vec![Point::new(1.0, 0.0), Point::new(9.0, 0.0)]);
        let mut sim = Sim::new(ConcreteWorld::new(&inst));
        sim.move_to(RobotId::SOURCE, Point::new(1.0, 0.0));
        sim.wake(RobotId::SOURCE, RobotId::sleeper(0));
        let (_, schedule, _) = sim.into_parts();
        let err = validate(
            &schedule,
            Point::ORIGIN,
            inst.positions(),
            &ValidationOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, SimError::NotAllAwake { asleep: 1 });
        // Relaxing the requirement lets it pass.
        let opts = ValidationOptions {
            require_all_awake: false,
            ..Default::default()
        };
        assert!(validate(&schedule, Point::ORIGIN, inst.positions(), &opts).is_ok());
    }

    fn run_compressed_chain() -> (CompressedRecorder, Vec<Point>) {
        let inst = Instance::new(vec![Point::new(1.0, 0.0), Point::new(2.0, 0.0)]);
        let positions = inst.positions().to_vec();
        let mut sim = Sim::with_compressed(ConcreteWorld::new(&inst));
        sim.move_to(RobotId::SOURCE, Point::new(1.0, 0.0));
        let r0 = sim.wake(RobotId::SOURCE, RobotId::sleeper(0));
        sim.move_to(r0, Point::new(2.0, 0.0));
        sim.wake(r0, RobotId::sleeper(1));
        let (_, rec, _) = sim.into_recorder_parts();
        (rec, positions)
    }

    #[test]
    fn compressed_report_matches_flat_validator_bitwise() {
        let (schedule, positions) = run_two_robot_chain();
        let (rec, _) = run_compressed_chain();
        let opts = ValidationOptions::default();
        let flat = validate(&schedule, Point::ORIGIN, &positions, &opts).expect("valid");
        let streamed = validate_compressed(&rec, Point::ORIGIN, &positions, &opts).expect("valid");
        assert_eq!(flat.makespan.to_bits(), streamed.makespan.to_bits());
        assert_eq!(
            flat.completion_time.to_bits(),
            streamed.completion_time.to_bits()
        );
        assert_eq!(flat.max_energy.to_bits(), streamed.max_energy.to_bits());
        assert_eq!(flat.total_energy.to_bits(), streamed.total_energy.to_bits());
        assert_eq!(flat.robots_awake, streamed.robots_awake);
        assert_eq!(flat.wake_count, streamed.wake_count);
    }

    #[test]
    fn compressed_energy_budget_is_enforced() {
        let (rec, positions) = run_compressed_chain();
        let opts = ValidationOptions {
            energy_budget: Some(0.5),
            ..Default::default()
        };
        let err = validate_compressed(&rec, Point::ORIGIN, &positions, &opts).unwrap_err();
        assert!(matches!(err, SimError::EnergyExceeded { .. }));
    }

    #[test]
    fn compressed_incomplete_run_fails_when_required() {
        let inst = Instance::new(vec![Point::new(1.0, 0.0), Point::new(9.0, 0.0)]);
        let mut sim = Sim::with_compressed(ConcreteWorld::new(&inst));
        sim.move_to(RobotId::SOURCE, Point::new(1.0, 0.0));
        sim.wake(RobotId::SOURCE, RobotId::sleeper(0));
        let (_, rec, _) = sim.into_recorder_parts();
        let err = validate_compressed(
            &rec,
            Point::ORIGIN,
            inst.positions(),
            &ValidationOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, SimError::NotAllAwake { asleep: 1 });
        let opts = ValidationOptions {
            require_all_awake: false,
            ..Default::default()
        };
        assert!(validate_compressed(&rec, Point::ORIGIN, inst.positions(), &opts).is_ok());
    }

    #[test]
    fn tampered_speed_is_caught() {
        let (mut schedule, positions) = run_two_robot_chain();
        // Corrupt: teleport the source by appending an impossible segment.
        schedule
            .timeline_mut(RobotId::SOURCE)
            .segments_tamper_for_test();
        let err = validate(
            &schedule,
            Point::ORIGIN,
            &positions,
            &ValidationOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::InvalidTimeline(_)));
    }
}
