use crate::par::{ParPool, POINT_BATCH};
use crate::{RobotId, Sighting, SimError, WorldView};
use freezetag_geometry::Point;
use freezetag_graph::GridIndex;
use freezetag_instances::adversarial::AdversarialLayout;

/// Number of candidate cells across a disk diameter; ~`π/4 · RES²` cells
/// per disk. 20 gives ≈ 314 cells — fine-grained enough that the
/// discretized adversary loses only an `O(1)` factor of the `Ω(area/2)`
/// exploration work (see DESIGN.md, substitution 3).
const RES: usize = 20;

#[derive(Debug, Clone)]
enum DiskState {
    /// The robot can still be at any of these cell centres: none of them
    /// has ever been within distance 1 of a snapshot.
    Hidden { candidates: Vec<Point> },
    /// The robot's position was forced on discovery.
    Pinned { pos: Point },
}

/// The adaptive adversary of Theorems 2 and 3.
///
/// Each sleeping robot lives in a disk `B_c(r)` of its
/// [`AdversarialLayout`], but its exact position is decided *lazily*: every
/// snapshot eliminates the candidate cells it would have seen, and only
/// when a snapshot would eliminate the last candidates is the robot pinned
/// — at the just-eliminated cell farthest from the observer. The pinned
/// position was therefore never within distance 1 of any earlier snapshot:
/// exactly the "last position of the disk to be explored" adversary in the
/// proof of Theorem 2.
///
/// # Example
///
/// ```
/// use freezetag_geometry::Point;
/// use freezetag_instances::adversarial::theorem3_layout;
/// use freezetag_sim::{AdversarialWorld, WorldView};
///
/// let mut w = AdversarialWorld::new(theorem3_layout(4.0, 1));
/// // One snapshot at the source reveals nothing: the robot hides in the
/// // unexplored part of the radius-4 disk.
/// assert!(w.look(Point::ORIGIN, 0.0).is_empty());
/// assert!(w.position(freezetag_sim::RobotId::sleeper(0)).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct AdversarialWorld {
    layout: AdversarialLayout,
    disks: Vec<DiskState>,
    wake_times: Vec<Option<f64>>, // indexed by RobotId::index()
    asleep: usize,
    center_index: GridIndex,
    scratch: Vec<usize>,
    looks: usize,
}

impl AdversarialWorld {
    /// Builds the adversary for a layout.
    pub fn new(layout: AdversarialLayout) -> Self {
        Self::with_pool(layout, &ParPool::sequential())
    }

    /// Builds the adversary with the per-disk candidate construction (a
    /// pure function of each disk centre) fanned out over `pool` in
    /// order-preserving batches — bit-identical to
    /// [`AdversarialWorld::new`]. Sensing itself stays sequential: the
    /// adaptive adversary's look history is state (see
    /// [`WorldView::pure_sensing`]), so this world keeps the in-order
    /// default of [`WorldView::look_batch_into`].
    pub fn with_pool(layout: AdversarialLayout, pool: &ParPool) -> Self {
        let r = layout.disk_radius;
        let h = 2.0 * r / RES as f64;
        let candidates_of = |c: Point| {
            let mut candidates = Vec::new();
            for i in 0..RES {
                for j in 0..RES {
                    let p = Point::new(
                        c.x - r + (i as f64 + 0.5) * h,
                        c.y - r + (j as f64 + 0.5) * h,
                    );
                    if p.dist(c) <= r {
                        candidates.push(p);
                    }
                }
            }
            DiskState::Hidden { candidates }
        };
        // ~RES² candidate points per disk: batch by disk count / RES².
        let disks = pool.map_concat(&layout.centers, POINT_BATCH / (RES * RES), |chunk| {
            chunk.iter().map(|&c| candidates_of(c)).collect::<Vec<_>>()
        });
        let mut wake_times = vec![None; layout.centers.len() + 1];
        wake_times[0] = Some(0.0);
        let cell = layout.disk_radius.max(1.0);
        let center_index = GridIndex::build(&layout.centers, cell);
        let asleep = wake_times.len() - 1;
        AdversarialWorld {
            layout,
            disks,
            wake_times,
            asleep,
            center_index,
            scratch: Vec::new(),
            looks: 0,
        }
    }

    /// The static layout this adversary plays on.
    pub fn layout(&self) -> &AdversarialLayout {
        &self.layout
    }

    /// How many robots have been pinned (discovered) so far.
    pub fn pinned_count(&self) -> usize {
        self.disks
            .iter()
            .filter(|d| matches!(d, DiskState::Pinned { .. }))
            .count()
    }

    /// The final positions of all robots, or `None` if some robot was
    /// never discovered (its position is still ambiguous).
    pub fn final_positions(&self) -> Option<Vec<Point>> {
        self.disks
            .iter()
            .map(|d| match d {
                DiskState::Pinned { pos } => Some(*pos),
                DiskState::Hidden { .. } => None,
            })
            .collect()
    }
}

impl WorldView for AdversarialWorld {
    fn n(&self) -> usize {
        self.layout.centers.len()
    }

    fn source_pos(&self) -> Point {
        Point::ORIGIN
    }

    fn look_into(&mut self, from: Point, time: f64, out: &mut Vec<Sighting>) {
        self.looks += 1;
        out.clear();
        let reach = 1.0 + self.layout.disk_radius + freezetag_geometry::EPS;
        let mut near = std::mem::take(&mut self.scratch);
        self.center_index.within_into(from, reach, &mut near);
        for &i in &near {
            let id = RobotId::sleeper(i);
            let awake_before = match self.wake_times[id.index()] {
                Some(wt) => time >= wt - freezetag_geometry::EPS,
                None => false,
            };
            match &mut self.disks[i] {
                DiskState::Pinned { pos } => {
                    if !awake_before && pos.dist(from) <= 1.0 + freezetag_geometry::EPS {
                        out.push(Sighting { id, pos: *pos });
                    }
                }
                DiskState::Hidden { candidates } => {
                    let (visible, invisible): (Vec<Point>, Vec<Point>) = candidates
                        .iter()
                        .partition(|p| p.dist(from) <= 1.0 + freezetag_geometry::EPS);
                    if invisible.is_empty() {
                        // The snapshot corners the robot: pin it at the
                        // just-seen cell farthest from the observer.
                        let pos = visible
                            .into_iter()
                            .max_by(|a, b| {
                                a.dist_sq(from)
                                    .partial_cmp(&b.dist_sq(from))
                                    .expect("finite")
                            })
                            .expect("hidden disk always has candidates");
                        self.disks[i] = DiskState::Pinned { pos };
                        out.push(Sighting { id, pos });
                    } else {
                        *candidates = invisible;
                    }
                }
            }
        }
        self.scratch = near;
        out.sort_by_key(|s| s.id);
    }

    fn wake(&mut self, target: RobotId, time: f64) -> Result<(), SimError> {
        let i = target
            .sleeper_index()
            .ok_or(SimError::AlreadyAwake(target))?;
        if !matches!(self.disks[i], DiskState::Pinned { .. }) {
            return Err(SimError::Undiscovered(target));
        }
        let slot = &mut self.wake_times[target.index()];
        if slot.is_some() {
            return Err(SimError::AlreadyAwake(target));
        }
        *slot = Some(time);
        self.asleep -= 1;
        Ok(())
    }

    fn is_awake(&self, target: RobotId) -> bool {
        self.wake_times[target.index()].is_some()
    }

    fn wake_time(&self, target: RobotId) -> Option<f64> {
        self.wake_times[target.index()]
    }

    fn position(&self, target: RobotId) -> Option<Point> {
        match target.sleeper_index() {
            None => Some(Point::ORIGIN),
            Some(i) => match &self.disks[i] {
                DiskState::Pinned { pos } => Some(*pos),
                DiskState::Hidden { .. } => None,
            },
        }
    }

    fn all_awake(&self) -> bool {
        self.asleep == 0
    }

    fn asleep_count(&self) -> usize {
        self.asleep
    }

    fn look_count(&self) -> usize {
        self.looks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freezetag_instances::adversarial::{theorem2_layout, theorem3_layout};

    #[test]
    fn robot_hides_until_disk_nearly_explored() {
        let mut w = AdversarialWorld::new(theorem3_layout(3.0, 1));
        // Snapshots along a coarse path never corner the robot...
        for k in 0..3 {
            let p = Point::new(k as f64, 0.0);
            assert!(w.look(p, k as f64).is_empty(), "seen too early at {p}");
        }
        assert_eq!(w.pinned_count(), 0);
        assert!(w.final_positions().is_none());
    }

    #[test]
    fn dense_sweep_eventually_pins_each_robot() {
        let mut w = AdversarialWorld::new(theorem3_layout(2.0, 1));
        // Sweep the bounding square of the disk with unit-vision snapshots
        // on a sqrt(2)-grid: guaranteed coverage.
        let rect = freezetag_geometry::Disk::new(Point::ORIGIN, 2.0).bounding_rect();
        let mut seen = Vec::new();
        for (k, p) in freezetag_geometry::sweep::snapshot_positions(&rect)
            .into_iter()
            .enumerate()
        {
            seen.extend(w.look(p, k as f64));
        }
        assert_eq!(seen.len(), 1, "exactly one discovery event");
        assert_eq!(w.pinned_count(), 1);
        let pos = w.position(RobotId::sleeper(0)).unwrap();
        assert!(pos.norm() <= 2.0 + 1e-9, "pinned inside the disk");
    }

    #[test]
    fn pinned_position_was_never_visible_before() {
        let mut w = AdversarialWorld::new(theorem3_layout(2.5, 1));
        let rect = freezetag_geometry::Disk::new(Point::ORIGIN, 2.5).bounding_rect();
        let snaps = freezetag_geometry::sweep::snapshot_positions(&rect);
        let mut history: Vec<Point> = Vec::new();
        let mut pinned: Option<(usize, Point)> = None;
        for (k, p) in snaps.iter().enumerate() {
            let seen = w.look(*p, k as f64);
            if let Some(s) = seen.first() {
                pinned = Some((k, s.pos));
                break;
            }
            history.push(*p);
        }
        let (_, pos) = pinned.expect("sweep must discover the robot");
        for h in &history {
            assert!(
                h.dist(pos) > 1.0,
                "pinned position {pos} was visible from earlier snapshot {h}"
            );
        }
    }

    #[test]
    fn wake_requires_discovery() {
        let mut w = AdversarialWorld::new(theorem3_layout(2.0, 1));
        assert_eq!(
            w.wake(RobotId::sleeper(0), 1.0),
            Err(SimError::Undiscovered(RobotId::sleeper(0)))
        );
    }

    #[test]
    fn theorem2_world_has_many_disks() {
        let layout = theorem2_layout(4.0, 16.0, 30);
        let n = layout.n();
        let w = AdversarialWorld::new(layout);
        assert_eq!(w.n(), n);
        assert!(n >= 4);
        assert_eq!(w.asleep_count(), n);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// For arbitrary look sequences, the adversary never reveals a
            /// position visible to an earlier look, candidate sets only
            /// shrink, and any pinned position lies inside its disk.
            #[test]
            fn adversary_soundness(
                looks in prop::collection::vec((-4.0f64..4.0, -4.0f64..4.0), 1..60),
                ell in 1.5f64..3.0,
            ) {
                let mut w = AdversarialWorld::new(theorem3_layout(ell, 1));
                let mut history: Vec<Point> = Vec::new();
                let mut pinned: Option<Point> = None;
                for (t, (x, y)) in looks.iter().enumerate() {
                    let p = Point::new(*x, *y);
                    let seen = w.look(p, t as f64);
                    if let Some(s) = seen.first() {
                        pinned = Some(s.pos);
                        break;
                    }
                    history.push(p);
                }
                if let Some(pos) = pinned {
                    prop_assert!(pos.norm() <= ell + 1e-9, "pinned outside the disk");
                    for h in &history {
                        prop_assert!(
                            h.dist(pos) > 1.0,
                            "pinned position visible from earlier look {h}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn co_located_theorem3_robots_pin_identically() {
        let mut w = AdversarialWorld::new(theorem3_layout(2.0, 3));
        let rect = freezetag_geometry::Disk::new(Point::ORIGIN, 2.0).bounding_rect();
        for (k, p) in freezetag_geometry::sweep::snapshot_positions(&rect)
            .into_iter()
            .enumerate()
        {
            let _ = w.look(p, k as f64);
        }
        let ps = w.final_positions().expect("all pinned");
        assert!(ps.windows(2).all(|ab| ab[0].approx_eq(ab[1])));
    }
}
