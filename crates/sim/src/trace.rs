/// A labelled time span recorded during an algorithm run — the raw data
/// behind the phase figures (Figures 1 and 2 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Phase label, e.g. `"round1/exploration"`.
    pub label: String,
    /// Span start (absolute simulation time).
    pub start: f64,
    /// Span end.
    pub end: f64,
    /// Free-form detail (team size, square width, recruit counts, …).
    pub detail: String,
}

/// Chronological log of labelled spans.
///
/// # Example
///
/// ```
/// use freezetag_sim::Trace;
/// let mut t = Trace::new();
/// t.record("round0/recruit", 0.0, 12.5, "team grew to 8");
/// assert_eq!(t.spans().len(), 1);
/// assert_eq!(t.total_duration("round0/recruit"), 12.5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    spans: Vec<TraceSpan>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Records a span.
    pub fn record(
        &mut self,
        label: impl Into<String>,
        start: f64,
        end: f64,
        detail: impl Into<String>,
    ) {
        self.spans.push(TraceSpan {
            label: label.into(),
            start,
            end,
            detail: detail.into(),
        });
    }

    /// All spans in recording order.
    pub fn spans(&self) -> &[TraceSpan] {
        &self.spans
    }

    /// Spans whose label starts with `prefix`.
    pub fn with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a TraceSpan> {
        self.spans
            .iter()
            .filter(move |s| s.label.starts_with(prefix))
    }

    /// Sum of durations of spans with exactly this label.
    pub fn total_duration(&self, label: &str) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.label == label)
            .map(|s| s.end - s.start)
            .sum()
    }

    /// Whether no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut t = Trace::new();
        t.record("a/x", 0.0, 2.0, "");
        t.record("a/y", 2.0, 3.0, "detail");
        t.record("b", 3.0, 10.0, "");
        t.record("a/x", 10.0, 11.0, "");
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(t.with_prefix("a/").count(), 3);
        assert_eq!(t.total_duration("a/x"), 3.0);
        assert_eq!(t.total_duration("b"), 7.0);
        assert_eq!(t.total_duration("zzz"), 0.0);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
