use crate::RobotId;
use std::error::Error;
use std::fmt;

/// Errors raised by the simulation substrate.
///
/// Most misuse (moving a robot that is asleep, waking an awake robot,
/// waking from afar) indicates an algorithm bug, so the high-level [`crate::Sim`]
/// driver panics on them; `SimError` is the non-panicking variant used by
/// the validator and the world implementations.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The robot is still asleep at the requested time.
    Asleep(RobotId),
    /// The robot was already awake when a wake was attempted.
    AlreadyAwake(RobotId),
    /// A wake was attempted from a position not co-located with the target.
    NotColocated {
        /// The robot attempting the wake.
        waker: RobotId,
        /// The sleeping robot.
        target: RobotId,
        /// Distance between the two at the moment of the attempt.
        distance: f64,
    },
    /// A wake was attempted on a robot whose position the algorithm has
    /// never observed (adversarial worlds pin positions only on discovery).
    Undiscovered(RobotId),
    /// A timeline violated the model (speed, continuity, start conditions);
    /// the payload describes the violation.
    InvalidTimeline(String),
    /// A robot exceeded its energy budget.
    EnergyExceeded {
        /// The offending robot.
        robot: RobotId,
        /// Energy actually spent.
        spent: f64,
        /// The budget it was given.
        budget: f64,
    },
    /// Not every robot was awake at the end of the run.
    NotAllAwake {
        /// Number of robots still asleep.
        asleep: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Asleep(r) => write!(f, "robot {r} is asleep"),
            SimError::AlreadyAwake(r) => write!(f, "robot {r} is already awake"),
            SimError::NotColocated {
                waker,
                target,
                distance,
            } => write!(
                f,
                "robot {waker} tried to wake {target} from distance {distance:.6}"
            ),
            SimError::Undiscovered(r) => {
                write!(f, "robot {r} has not been discovered yet")
            }
            SimError::InvalidTimeline(msg) => write!(f, "invalid timeline: {msg}"),
            SimError::EnergyExceeded {
                robot,
                spent,
                budget,
            } => write!(
                f,
                "robot {robot} spent {spent:.3} exceeding budget {budget:.3}"
            ),
            SimError::NotAllAwake { asleep } => {
                write!(f, "{asleep} robots still asleep at termination")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let errs = [
            SimError::Asleep(RobotId::SOURCE),
            SimError::AlreadyAwake(RobotId::sleeper(0)),
            SimError::NotColocated {
                waker: RobotId::SOURCE,
                target: RobotId::sleeper(1),
                distance: 2.0,
            },
            SimError::Undiscovered(RobotId::sleeper(2)),
            SimError::InvalidTimeline("gap".into()),
            SimError::EnergyExceeded {
                robot: RobotId::sleeper(3),
                spent: 10.0,
                budget: 5.0,
            },
            SimError::NotAllAwake { asleep: 4 },
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.chars().next().unwrap().is_uppercase());
        }
    }
}
