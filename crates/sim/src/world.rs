use crate::{RobotId, SimError};
use freezetag_geometry::Point;
use freezetag_graph::GridIndex;
use freezetag_instances::Instance;

/// A robot observed by a `look` snapshot: a *sleeping* robot within
/// Euclidean distance 1 of the observer, reported at its initial position.
///
/// Awake robots are deliberately not reported: the paper's algorithms track
/// awake teammates through shared memory (co-location exchanges), never
/// through vision, and a woken robot leaves its initial position anyway.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sighting {
    /// The observed sleeping robot.
    pub id: RobotId,
    /// Its (initial) position.
    pub pos: Point,
}

/// The restricted sensing interface: the *only* channel through which a
/// distributed algorithm learns robot positions.
///
/// Implementations: [`ConcreteWorld`] (fixed instance) and
/// [`crate::AdversarialWorld`] (adaptive lower-bound adversary).
pub trait WorldView {
    /// Number of initially-sleeping robots `n`.
    fn n(&self) -> usize;

    /// Position of the source robot.
    fn source_pos(&self) -> Point;

    /// Snapshot: sleeping robots within Euclidean distance 1 of `from` at
    /// time `time`, sorted by id. Takes `&mut self` because adversarial
    /// worlds update their knowledge state on every look.
    fn look(&mut self, from: Point, time: f64) -> Vec<Sighting>;

    /// Marks `target` awake at `time`.
    ///
    /// # Errors
    ///
    /// [`SimError::AlreadyAwake`] if it was already awake;
    /// [`SimError::Undiscovered`] if its position has never been observed
    /// (adversarial worlds only).
    fn wake(&mut self, target: RobotId, time: f64) -> Result<(), SimError>;

    /// Whether `target` is awake.
    fn is_awake(&self, target: RobotId) -> bool;

    /// Wake time of `target` (`Some(0.0)` for the source).
    fn wake_time(&self, target: RobotId) -> Option<f64>;

    /// Initial position of `target` if known to the world — always known
    /// for concrete worlds; `None` for adversarial robots not yet pinned.
    fn position(&self, target: RobotId) -> Option<Point>;

    /// Whether every robot (including the source) is awake.
    fn all_awake(&self) -> bool {
        (0..=self.n()).all(|i| self.is_awake(RobotId::from_index(i)))
    }

    /// Number of sleeping robots remaining.
    fn asleep_count(&self) -> usize {
        (0..=self.n())
            .filter(|&i| !self.is_awake(RobotId::from_index(i)))
            .count()
    }

    /// Total `look` snapshots taken so far (model-accounting statistic).
    fn look_count(&self) -> usize;
}

/// A world built from a fixed [`Instance`]: all initial positions are
/// determined upfront; `look` answers through a unit-cell spatial index.
///
/// # Example
///
/// ```
/// use freezetag_geometry::Point;
/// use freezetag_instances::Instance;
/// use freezetag_sim::{ConcreteWorld, RobotId, WorldView};
///
/// let inst = Instance::new(vec![Point::new(0.5, 0.0), Point::new(3.0, 0.0)]);
/// let mut w = ConcreteWorld::new(&inst);
/// let seen = w.look(Point::ORIGIN, 0.0);
/// assert_eq!(seen.len(), 1);
/// assert_eq!(seen[0].id, RobotId::sleeper(0));
/// ```
#[derive(Debug, Clone)]
pub struct ConcreteWorld {
    source: Point,
    positions: Vec<Point>,
    wake_times: Vec<Option<f64>>, // indexed by RobotId::index()
    index: GridIndex,
    looks: usize,
}

impl ConcreteWorld {
    /// Builds the world of an instance; only the source starts awake.
    pub fn new(instance: &Instance) -> Self {
        let positions = instance.positions().to_vec();
        let mut wake_times = vec![None; positions.len() + 1];
        wake_times[0] = Some(0.0);
        let index = GridIndex::build(&positions, 1.0);
        ConcreteWorld {
            source: instance.source(),
            positions,
            wake_times,
            index,
            looks: 0,
        }
    }

    /// All sleeping-robot initial positions (index `i` is
    /// `RobotId::sleeper(i)`).
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }
}

impl WorldView for ConcreteWorld {
    fn n(&self) -> usize {
        self.positions.len()
    }

    fn source_pos(&self) -> Point {
        self.source
    }

    fn look(&mut self, from: Point, time: f64) -> Vec<Sighting> {
        self.looks += 1;
        self.index
            .within(from, 1.0)
            .filter(|&i| {
                match self.wake_times[i + 1] {
                    None => true,                                    // still asleep: visible
                    Some(wt) => time < wt - freezetag_geometry::EPS, // woken later
                }
            })
            .map(|i| Sighting {
                id: RobotId::sleeper(i),
                pos: self.positions[i],
            })
            .collect()
    }

    fn wake(&mut self, target: RobotId, time: f64) -> Result<(), SimError> {
        let slot = &mut self.wake_times[target.index()];
        if slot.is_some() {
            return Err(SimError::AlreadyAwake(target));
        }
        *slot = Some(time);
        Ok(())
    }

    fn is_awake(&self, target: RobotId) -> bool {
        self.wake_times[target.index()].is_some()
    }

    fn wake_time(&self, target: RobotId) -> Option<f64> {
        self.wake_times[target.index()]
    }

    fn position(&self, target: RobotId) -> Option<Point> {
        match target.sleeper_index() {
            None => Some(self.source),
            Some(i) => Some(self.positions[i]),
        }
    }

    fn look_count(&self) -> usize {
        self.looks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> ConcreteWorld {
        let inst = Instance::new(vec![
            Point::new(0.5, 0.0),
            Point::new(0.0, 0.9),
            Point::new(2.0, 2.0),
        ]);
        ConcreteWorld::new(&inst)
    }

    #[test]
    fn look_sees_only_within_unit_distance() {
        let mut w = world();
        let seen = w.look(Point::ORIGIN, 0.0);
        let ids: Vec<RobotId> = seen.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![RobotId::sleeper(0), RobotId::sleeper(1)]);
        assert_eq!(w.look_count(), 1);
    }

    #[test]
    fn woken_robots_disappear_from_later_looks() {
        let mut w = world();
        w.wake(RobotId::sleeper(0), 5.0).unwrap();
        // Before the wake they are still visible...
        assert_eq!(w.look(Point::ORIGIN, 4.0).len(), 2);
        // ...and invisible from the wake time onward.
        assert_eq!(w.look(Point::ORIGIN, 5.0).len(), 1);
        assert_eq!(w.look(Point::ORIGIN, 6.0).len(), 1);
    }

    #[test]
    fn double_wake_is_an_error() {
        let mut w = world();
        w.wake(RobotId::sleeper(2), 1.0).unwrap();
        assert_eq!(
            w.wake(RobotId::sleeper(2), 2.0),
            Err(SimError::AlreadyAwake(RobotId::sleeper(2)))
        );
    }

    #[test]
    fn status_and_counts() {
        let mut w = world();
        assert!(w.is_awake(RobotId::SOURCE));
        assert_eq!(w.wake_time(RobotId::SOURCE), Some(0.0));
        assert_eq!(w.asleep_count(), 3);
        assert!(!w.all_awake());
        for i in 0..3 {
            w.wake(RobotId::sleeper(i), 1.0).unwrap();
        }
        assert!(w.all_awake());
        assert_eq!(w.asleep_count(), 0);
    }

    #[test]
    fn positions_are_known() {
        let w = world();
        assert_eq!(w.position(RobotId::SOURCE), Some(Point::ORIGIN));
        assert_eq!(w.position(RobotId::sleeper(2)), Some(Point::new(2.0, 2.0)));
    }
}
