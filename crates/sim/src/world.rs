use crate::par::{ParPool, LOOK_BATCH, PAR_LOOK_MIN, POINT_BATCH};
use crate::{RobotId, SimError};
use freezetag_geometry::Point;
use freezetag_graph::GridIndex;
use freezetag_instances::Instance;

/// A robot observed by a `look` snapshot: a *sleeping* robot within
/// Euclidean distance 1 of the observer, reported at its initial position.
///
/// Awake robots are deliberately not reported: the paper's algorithms track
/// awake teammates through shared memory (co-location exchanges), never
/// through vision, and a woken robot leaves its initial position anyway.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sighting {
    /// The observed sleeping robot.
    pub id: RobotId,
    /// Its (initial) position.
    pub pos: Point,
}

/// The restricted sensing interface: the *only* channel through which a
/// distributed algorithm learns robot positions.
///
/// Implementations: [`ConcreteWorld`] (fixed instance) and
/// [`crate::AdversarialWorld`] (adaptive lower-bound adversary).
pub trait WorldView {
    /// Number of initially-sleeping robots `n`.
    fn n(&self) -> usize;

    /// Position of the source robot.
    fn source_pos(&self) -> Point;

    /// Snapshot into a reusable buffer: clears `out` and fills it with the
    /// sleeping robots within Euclidean distance 1 of `from` at time
    /// `time`, sorted by id. Takes `&mut self` because adversarial worlds
    /// update their knowledge state on every look.
    ///
    /// This is the hot sensing path: implementations must not allocate per
    /// call beyond growing `out` and internal scratch to their high-water
    /// marks.
    fn look_into(&mut self, from: Point, time: f64, out: &mut Vec<Sighting>);

    /// Allocating convenience wrapper around [`WorldView::look_into`].
    fn look(&mut self, from: Point, time: f64) -> Vec<Sighting> {
        let mut out = Vec::new();
        self.look_into(from, time, &mut out);
        out
    }

    /// Whether sensing is a pure function of the committed wake state:
    /// two `look`s with the same `(from, time)` and the same wake commits
    /// in between return the same sightings, regardless of what other
    /// `look`s happened. Concrete worlds qualify; the adaptive adversary
    /// does **not** (every snapshot eliminates hiding candidates, so look
    /// *history* is state). Drivers consult this before reordering or
    /// fanning out sensing, e.g. `AGrid`'s slot-batched frontier
    /// expansion.
    fn pure_sensing(&self) -> bool {
        false
    }

    /// Batched sensing: clears `out` and `counts`, then resolves every
    /// query `(from, time)` of `queries` **in order**, appending each
    /// query's sightings to `out` (concatenated) and its sighting count to
    /// `counts` — exactly the result of calling [`WorldView::look_into`]
    /// once per query in sequence, and counted as `queries.len()` looks.
    ///
    /// The provided implementation *is* that sequential loop, which is the
    /// only sound order for impure-sensing worlds (see
    /// [`WorldView::pure_sensing`]). Pure-sensing worlds override it to
    /// fan the queries out over `pool` in fixed-size batches with an
    /// order-preserving merge, which keeps the result bit-identical to the
    /// sequential loop for any thread count.
    fn look_batch_into(
        &mut self,
        queries: &[(Point, f64)],
        pool: &ParPool,
        out: &mut Vec<Sighting>,
        counts: &mut Vec<u32>,
    ) {
        let _ = pool;
        out.clear();
        counts.clear();
        let mut one = Vec::new();
        for &(from, time) in queries {
            self.look_into(from, time, &mut one);
            counts.push(one.len() as u32);
            out.extend_from_slice(&one);
        }
    }

    /// Marks `target` awake at `time`.
    ///
    /// # Errors
    ///
    /// [`SimError::AlreadyAwake`] if it was already awake;
    /// [`SimError::Undiscovered`] if its position has never been observed
    /// (adversarial worlds only).
    fn wake(&mut self, target: RobotId, time: f64) -> Result<(), SimError>;

    /// Whether `target` is awake.
    fn is_awake(&self, target: RobotId) -> bool;

    /// Wake time of `target` (`Some(0.0)` for the source).
    fn wake_time(&self, target: RobotId) -> Option<f64>;

    /// Initial position of `target` if known to the world — always known
    /// for concrete worlds; `None` for adversarial robots not yet pinned.
    fn position(&self, target: RobotId) -> Option<Point>;

    /// Whether every robot (including the source) is awake.
    ///
    /// The provided implementation scans all robots; both shipped worlds
    /// override it with a maintained O(1) counter — this sits inside the
    /// wave loops of every driver.
    fn all_awake(&self) -> bool {
        (0..=self.n()).all(|i| self.is_awake(RobotId::from_index(i)))
    }

    /// Number of sleeping robots remaining (see [`WorldView::all_awake`]
    /// on the provided implementation's cost).
    fn asleep_count(&self) -> usize {
        (0..=self.n())
            .filter(|&i| !self.is_awake(RobotId::from_index(i)))
            .count()
    }

    /// Total `look` snapshots taken so far (model-accounting statistic).
    fn look_count(&self) -> usize;
}

/// A bitset over robot indices (`RobotId::index()`), one bit per robot.
#[derive(Debug, Clone)]
struct AwakeBits(Vec<u64>);

impl AwakeBits {
    fn new(slots: usize) -> Self {
        AwakeBits(vec![0; slots.div_ceil(64)])
    }

    #[inline]
    fn get(&self, i: usize) -> bool {
        self.0[i / 64] & (1 << (i % 64)) != 0
    }

    #[inline]
    fn set(&mut self, i: usize) {
        self.0[i / 64] |= 1 << (i % 64);
    }
}

/// A world built from a fixed [`Instance`], stored struct-of-arrays: the
/// initial positions live in the flat coordinate arrays of a unit-cell
/// [`GridIndex`], wake state is a bitset plus a flat `Vec<f64>` of wake
/// times, and a maintained counter answers [`WorldView::asleep_count`] in
/// O(1). `look_into` reuses an internal scratch buffer, so steady-state
/// sensing performs no allocations — the layout that makes 10⁶-robot runs
/// tractable.
///
/// # Example
///
/// ```
/// use freezetag_geometry::Point;
/// use freezetag_instances::Instance;
/// use freezetag_sim::{ConcreteWorld, RobotId, WorldView};
///
/// let inst = Instance::new(vec![Point::new(0.5, 0.0), Point::new(3.0, 0.0)]);
/// let mut w = ConcreteWorld::new(&inst);
/// let seen = w.look(Point::ORIGIN, 0.0);
/// assert_eq!(seen.len(), 1);
/// assert_eq!(seen[0].id, RobotId::sleeper(0));
/// ```
#[derive(Debug, Clone)]
pub struct ConcreteWorld {
    source: Point,
    /// Wake time by `RobotId::index()`; meaningful only when the awake bit
    /// is set (NaN otherwise).
    wake_times: Vec<f64>,
    awake: AwakeBits,
    asleep: usize,
    index: GridIndex,
    scratch: Vec<usize>,
    looks: usize,
}

impl ConcreteWorld {
    /// Builds the world of an instance; only the source starts awake.
    pub fn new(instance: &Instance) -> Self {
        Self::with_pool(instance, &ParPool::sequential())
    }

    /// Builds the world with the CSR grid construction's per-point key
    /// pass fanned out over `pool` (order-preserving batches), producing
    /// an index bit-identical to the sequential [`ConcreteWorld::new`].
    pub fn with_pool(instance: &Instance, pool: &ParPool) -> Self {
        let n = instance.n();
        let mut wake_times = vec![f64::NAN; n + 1];
        wake_times[0] = 0.0;
        let mut awake = AwakeBits::new(n + 1);
        awake.set(0);
        let positions = instance.positions();
        let index = if pool.is_sequential() || positions.len() < POINT_BATCH {
            GridIndex::build(positions, 1.0)
        } else {
            let keys = pool.map_concat(positions, POINT_BATCH, |chunk| {
                chunk
                    .iter()
                    .map(|&p| GridIndex::cell_key(p, 1.0))
                    .collect::<Vec<_>>()
            });
            GridIndex::build_from_keys(positions, 1.0, &keys)
        };
        ConcreteWorld {
            source: instance.source(),
            wake_times,
            awake,
            asleep: n,
            index,
            scratch: Vec::new(),
            looks: 0,
        }
    }

    /// Initial position of sleeping robot `i` (`RobotId::sleeper(i)`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn sleeper_pos(&self, i: usize) -> Point {
        self.index.point(i)
    }

    /// Deterministic estimate of the world's heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.index.memory_bytes() + self.wake_times.len() * 8 + self.awake.0.len() * 8
    }

    /// The pure core of a snapshot at `(from, time)`: appends the visible
    /// sleeping robots (id order) to `out` using an external `scratch`.
    /// Takes `&self` so batched sensing can run it from many workers
    /// against the same committed wake state; does not bump `look_count`.
    #[inline]
    fn sense_at(&self, from: Point, time: f64, scratch: &mut Vec<usize>, out: &mut Vec<Sighting>) {
        self.index.within_into(from, 1.0, scratch);
        for &i in scratch.iter() {
            // Visible iff still asleep at `time` (woken strictly later
            // counts as asleep now).
            let visible = if self.awake.get(i + 1) {
                time < self.wake_times[i + 1] - freezetag_geometry::EPS
            } else {
                true
            };
            if visible {
                out.push(Sighting {
                    id: RobotId::sleeper(i),
                    pos: self.index.point(i),
                });
            }
        }
    }
}

impl WorldView for ConcreteWorld {
    fn n(&self) -> usize {
        self.index.len()
    }

    fn source_pos(&self) -> Point {
        self.source
    }

    fn look_into(&mut self, from: Point, time: f64, out: &mut Vec<Sighting>) {
        self.looks += 1;
        out.clear();
        let mut scratch = std::mem::take(&mut self.scratch);
        self.sense_at(from, time, &mut scratch, out);
        self.scratch = scratch;
    }

    fn pure_sensing(&self) -> bool {
        true
    }

    fn look_batch_into(
        &mut self,
        queries: &[(Point, f64)],
        pool: &ParPool,
        out: &mut Vec<Sighting>,
        counts: &mut Vec<u32>,
    ) {
        self.looks += queries.len();
        out.clear();
        counts.clear();
        if pool.is_sequential() || queries.len() < PAR_LOOK_MIN {
            let mut scratch = std::mem::take(&mut self.scratch);
            for &(from, time) in queries {
                let before = out.len();
                self.sense_at(from, time, &mut scratch, out);
                counts.push((out.len() - before) as u32);
            }
            self.scratch = scratch;
            return;
        }
        // Fan out in fixed-size batches; sense_at is pure in the committed
        // wake state, and the order-preserving merge makes the result
        // bit-identical to the sequential loop above.
        let this = &*self;
        let parts = pool.map_batches(queries, LOOK_BATCH, |_, chunk| {
            let mut scratch = Vec::new();
            let mut sightings = Vec::new();
            let mut chunk_counts = Vec::with_capacity(chunk.len());
            for &(from, time) in chunk {
                let before = sightings.len();
                this.sense_at(from, time, &mut scratch, &mut sightings);
                chunk_counts.push((sightings.len() - before) as u32);
            }
            (sightings, chunk_counts)
        });
        for (sightings, chunk_counts) in parts {
            out.extend_from_slice(&sightings);
            counts.extend_from_slice(&chunk_counts);
        }
    }

    fn wake(&mut self, target: RobotId, time: f64) -> Result<(), SimError> {
        let i = target.index();
        if self.awake.get(i) {
            return Err(SimError::AlreadyAwake(target));
        }
        self.awake.set(i);
        self.wake_times[i] = time;
        self.asleep -= 1;
        Ok(())
    }

    fn is_awake(&self, target: RobotId) -> bool {
        self.awake.get(target.index())
    }

    fn wake_time(&self, target: RobotId) -> Option<f64> {
        let i = target.index();
        self.awake.get(i).then(|| self.wake_times[i])
    }

    fn position(&self, target: RobotId) -> Option<Point> {
        match target.sleeper_index() {
            None => Some(self.source),
            Some(i) => Some(self.index.point(i)),
        }
    }

    fn all_awake(&self) -> bool {
        self.asleep == 0
    }

    fn asleep_count(&self) -> usize {
        self.asleep
    }

    fn look_count(&self) -> usize {
        self.looks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> ConcreteWorld {
        let inst = Instance::new(vec![
            Point::new(0.5, 0.0),
            Point::new(0.0, 0.9),
            Point::new(2.0, 2.0),
        ]);
        ConcreteWorld::new(&inst)
    }

    #[test]
    fn look_sees_only_within_unit_distance() {
        let mut w = world();
        let seen = w.look(Point::ORIGIN, 0.0);
        let ids: Vec<RobotId> = seen.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![RobotId::sleeper(0), RobotId::sleeper(1)]);
        assert_eq!(w.look_count(), 1);
    }

    #[test]
    fn look_into_reuses_buffers_without_stale_entries() {
        let mut w = world();
        let mut buf = Vec::new();
        w.look_into(Point::ORIGIN, 0.0, &mut buf);
        assert_eq!(buf.len(), 2);
        w.look_into(Point::new(2.0, 2.0), 0.0, &mut buf);
        assert_eq!(buf.len(), 1, "buffer must be cleared between looks");
        assert_eq!(buf[0].id, RobotId::sleeper(2));
        assert_eq!(w.look_count(), 2);
    }

    #[test]
    fn woken_robots_disappear_from_later_looks() {
        let mut w = world();
        w.wake(RobotId::sleeper(0), 5.0).unwrap();
        // Before the wake they are still visible...
        assert_eq!(w.look(Point::ORIGIN, 4.0).len(), 2);
        // ...and invisible from the wake time onward.
        assert_eq!(w.look(Point::ORIGIN, 5.0).len(), 1);
        assert_eq!(w.look(Point::ORIGIN, 6.0).len(), 1);
    }

    #[test]
    fn double_wake_is_an_error() {
        let mut w = world();
        w.wake(RobotId::sleeper(2), 1.0).unwrap();
        assert_eq!(
            w.wake(RobotId::sleeper(2), 2.0),
            Err(SimError::AlreadyAwake(RobotId::sleeper(2)))
        );
    }

    #[test]
    fn status_and_counts() {
        let mut w = world();
        assert!(w.is_awake(RobotId::SOURCE));
        assert_eq!(w.wake_time(RobotId::SOURCE), Some(0.0));
        assert_eq!(w.asleep_count(), 3);
        assert!(!w.all_awake());
        for i in 0..3 {
            w.wake(RobotId::sleeper(i), 1.0).unwrap();
        }
        assert!(w.all_awake());
        assert_eq!(w.asleep_count(), 0);
    }

    #[test]
    fn counter_agrees_with_trait_default_scan() {
        let mut w = world();
        let scan = |w: &ConcreteWorld| {
            (0..=w.n())
                .filter(|&i| !w.is_awake(RobotId::from_index(i)))
                .count()
        };
        assert_eq!(w.asleep_count(), scan(&w));
        w.wake(RobotId::sleeper(1), 2.0).unwrap();
        assert_eq!(w.asleep_count(), scan(&w));
        assert_eq!(w.all_awake(), scan(&w) == 0);
    }

    #[test]
    fn with_pool_builds_the_identical_world() {
        let inst = Instance::new(
            (0..3000)
                .map(|i| Point::new((i % 55) as f64 * 0.4 + 0.2, (i / 55) as f64 * 0.4 + 0.2))
                .collect(),
        );
        let mut a = ConcreteWorld::new(&inst);
        let mut b = ConcreteWorld::with_pool(&inst, &ParPool::new(4));
        for q in [Point::ORIGIN, Point::new(10.0, 8.0), Point::new(21.9, 21.0)] {
            assert_eq!(a.look(q, 0.0), b.look(q, 0.0), "query {q}");
        }
        assert_eq!(a.memory_bytes(), b.memory_bytes());
    }

    #[test]
    fn batched_sensing_matches_sequential_looks_and_counts_them() {
        let inst = Instance::new(
            (0..4000)
                .map(|i| Point::new((i % 64) as f64 * 0.3 + 0.1, (i / 64) as f64 * 0.3 + 0.1))
                .collect(),
        );
        // Wake a few robots at staggered times so visibility windows are
        // exercised on both paths.
        let build = || {
            let mut w = ConcreteWorld::new(&inst);
            for i in (0..4000).step_by(7) {
                w.wake(RobotId::sleeper(i), (i % 13) as f64).unwrap();
            }
            w
        };
        let queries: Vec<(Point, f64)> = (0..3000)
            .map(|i| {
                (
                    Point::new((i % 60) as f64 * 0.33, (i / 60) as f64 * 0.37),
                    (i % 17) as f64,
                )
            })
            .collect();
        assert!(queries.len() >= PAR_LOOK_MIN, "must exercise the fan-out");
        let mut seq_w = build();
        let (mut seq_out, mut seq_counts) = (Vec::new(), Vec::new());
        seq_w.look_batch_into(
            &queries,
            &ParPool::sequential(),
            &mut seq_out,
            &mut seq_counts,
        );
        // The sequential batch equals per-query look_into calls.
        let mut loop_w = build();
        let mut one = Vec::new();
        let mut flat = Vec::new();
        for &(from, time) in &queries {
            loop_w.look_into(from, time, &mut one);
            flat.extend_from_slice(&one);
        }
        assert_eq!(seq_out, flat);
        assert_eq!(seq_w.look_count(), loop_w.look_count());
        assert_eq!(
            seq_counts.iter().map(|&c| c as usize).sum::<usize>(),
            flat.len()
        );
        // And the parallel batch equals the sequential batch exactly.
        for threads in [2, 4] {
            let mut par_w = build();
            let (mut par_out, mut par_counts) = (Vec::new(), Vec::new());
            par_w.look_batch_into(
                &queries,
                &ParPool::new(threads),
                &mut par_out,
                &mut par_counts,
            );
            assert_eq!(par_out, seq_out, "threads={threads}");
            assert_eq!(par_counts, seq_counts, "threads={threads}");
            assert_eq!(par_w.look_count(), seq_w.look_count());
        }
    }

    #[test]
    fn pure_sensing_flags() {
        let w = world();
        assert!(w.pure_sensing());
    }

    #[test]
    fn positions_are_known() {
        let w = world();
        assert_eq!(w.position(RobotId::SOURCE), Some(Point::ORIGIN));
        assert_eq!(w.position(RobotId::sleeper(2)), Some(Point::new(2.0, 2.0)));
        assert_eq!(w.sleeper_pos(2), Point::new(2.0, 2.0));
        assert!(w.memory_bytes() > 0);
    }
}
