use crate::{RobotId, SimError};
use freezetag_geometry::Point;
use freezetag_graph::GridIndex;
use freezetag_instances::Instance;

/// A robot observed by a `look` snapshot: a *sleeping* robot within
/// Euclidean distance 1 of the observer, reported at its initial position.
///
/// Awake robots are deliberately not reported: the paper's algorithms track
/// awake teammates through shared memory (co-location exchanges), never
/// through vision, and a woken robot leaves its initial position anyway.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sighting {
    /// The observed sleeping robot.
    pub id: RobotId,
    /// Its (initial) position.
    pub pos: Point,
}

/// The restricted sensing interface: the *only* channel through which a
/// distributed algorithm learns robot positions.
///
/// Implementations: [`ConcreteWorld`] (fixed instance) and
/// [`crate::AdversarialWorld`] (adaptive lower-bound adversary).
pub trait WorldView {
    /// Number of initially-sleeping robots `n`.
    fn n(&self) -> usize;

    /// Position of the source robot.
    fn source_pos(&self) -> Point;

    /// Snapshot into a reusable buffer: clears `out` and fills it with the
    /// sleeping robots within Euclidean distance 1 of `from` at time
    /// `time`, sorted by id. Takes `&mut self` because adversarial worlds
    /// update their knowledge state on every look.
    ///
    /// This is the hot sensing path: implementations must not allocate per
    /// call beyond growing `out` and internal scratch to their high-water
    /// marks.
    fn look_into(&mut self, from: Point, time: f64, out: &mut Vec<Sighting>);

    /// Allocating convenience wrapper around [`WorldView::look_into`].
    fn look(&mut self, from: Point, time: f64) -> Vec<Sighting> {
        let mut out = Vec::new();
        self.look_into(from, time, &mut out);
        out
    }

    /// Marks `target` awake at `time`.
    ///
    /// # Errors
    ///
    /// [`SimError::AlreadyAwake`] if it was already awake;
    /// [`SimError::Undiscovered`] if its position has never been observed
    /// (adversarial worlds only).
    fn wake(&mut self, target: RobotId, time: f64) -> Result<(), SimError>;

    /// Whether `target` is awake.
    fn is_awake(&self, target: RobotId) -> bool;

    /// Wake time of `target` (`Some(0.0)` for the source).
    fn wake_time(&self, target: RobotId) -> Option<f64>;

    /// Initial position of `target` if known to the world — always known
    /// for concrete worlds; `None` for adversarial robots not yet pinned.
    fn position(&self, target: RobotId) -> Option<Point>;

    /// Whether every robot (including the source) is awake.
    ///
    /// The provided implementation scans all robots; both shipped worlds
    /// override it with a maintained O(1) counter — this sits inside the
    /// wave loops of every driver.
    fn all_awake(&self) -> bool {
        (0..=self.n()).all(|i| self.is_awake(RobotId::from_index(i)))
    }

    /// Number of sleeping robots remaining (see [`WorldView::all_awake`]
    /// on the provided implementation's cost).
    fn asleep_count(&self) -> usize {
        (0..=self.n())
            .filter(|&i| !self.is_awake(RobotId::from_index(i)))
            .count()
    }

    /// Total `look` snapshots taken so far (model-accounting statistic).
    fn look_count(&self) -> usize;
}

/// A bitset over robot indices (`RobotId::index()`), one bit per robot.
#[derive(Debug, Clone)]
struct AwakeBits(Vec<u64>);

impl AwakeBits {
    fn new(slots: usize) -> Self {
        AwakeBits(vec![0; slots.div_ceil(64)])
    }

    #[inline]
    fn get(&self, i: usize) -> bool {
        self.0[i / 64] & (1 << (i % 64)) != 0
    }

    #[inline]
    fn set(&mut self, i: usize) {
        self.0[i / 64] |= 1 << (i % 64);
    }
}

/// A world built from a fixed [`Instance`], stored struct-of-arrays: the
/// initial positions live in the flat coordinate arrays of a unit-cell
/// [`GridIndex`], wake state is a bitset plus a flat `Vec<f64>` of wake
/// times, and a maintained counter answers [`WorldView::asleep_count`] in
/// O(1). `look_into` reuses an internal scratch buffer, so steady-state
/// sensing performs no allocations — the layout that makes 10⁶-robot runs
/// tractable.
///
/// # Example
///
/// ```
/// use freezetag_geometry::Point;
/// use freezetag_instances::Instance;
/// use freezetag_sim::{ConcreteWorld, RobotId, WorldView};
///
/// let inst = Instance::new(vec![Point::new(0.5, 0.0), Point::new(3.0, 0.0)]);
/// let mut w = ConcreteWorld::new(&inst);
/// let seen = w.look(Point::ORIGIN, 0.0);
/// assert_eq!(seen.len(), 1);
/// assert_eq!(seen[0].id, RobotId::sleeper(0));
/// ```
#[derive(Debug, Clone)]
pub struct ConcreteWorld {
    source: Point,
    /// Wake time by `RobotId::index()`; meaningful only when the awake bit
    /// is set (NaN otherwise).
    wake_times: Vec<f64>,
    awake: AwakeBits,
    asleep: usize,
    index: GridIndex,
    scratch: Vec<usize>,
    looks: usize,
}

impl ConcreteWorld {
    /// Builds the world of an instance; only the source starts awake.
    pub fn new(instance: &Instance) -> Self {
        let n = instance.n();
        let mut wake_times = vec![f64::NAN; n + 1];
        wake_times[0] = 0.0;
        let mut awake = AwakeBits::new(n + 1);
        awake.set(0);
        let index = GridIndex::build(instance.positions(), 1.0);
        ConcreteWorld {
            source: instance.source(),
            wake_times,
            awake,
            asleep: n,
            index,
            scratch: Vec::new(),
            looks: 0,
        }
    }

    /// Initial position of sleeping robot `i` (`RobotId::sleeper(i)`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn sleeper_pos(&self, i: usize) -> Point {
        self.index.point(i)
    }

    /// Deterministic estimate of the world's heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.index.memory_bytes() + self.wake_times.len() * 8 + self.awake.0.len() * 8
    }
}

impl WorldView for ConcreteWorld {
    fn n(&self) -> usize {
        self.index.len()
    }

    fn source_pos(&self) -> Point {
        self.source
    }

    fn look_into(&mut self, from: Point, time: f64, out: &mut Vec<Sighting>) {
        self.looks += 1;
        out.clear();
        let mut scratch = std::mem::take(&mut self.scratch);
        self.index.within_into(from, 1.0, &mut scratch);
        for &i in &scratch {
            // Visible iff still asleep at `time` (woken strictly later
            // counts as asleep now).
            let visible = if self.awake.get(i + 1) {
                time < self.wake_times[i + 1] - freezetag_geometry::EPS
            } else {
                true
            };
            if visible {
                out.push(Sighting {
                    id: RobotId::sleeper(i),
                    pos: self.index.point(i),
                });
            }
        }
        self.scratch = scratch;
    }

    fn wake(&mut self, target: RobotId, time: f64) -> Result<(), SimError> {
        let i = target.index();
        if self.awake.get(i) {
            return Err(SimError::AlreadyAwake(target));
        }
        self.awake.set(i);
        self.wake_times[i] = time;
        self.asleep -= 1;
        Ok(())
    }

    fn is_awake(&self, target: RobotId) -> bool {
        self.awake.get(target.index())
    }

    fn wake_time(&self, target: RobotId) -> Option<f64> {
        let i = target.index();
        self.awake.get(i).then(|| self.wake_times[i])
    }

    fn position(&self, target: RobotId) -> Option<Point> {
        match target.sleeper_index() {
            None => Some(self.source),
            Some(i) => Some(self.index.point(i)),
        }
    }

    fn all_awake(&self) -> bool {
        self.asleep == 0
    }

    fn asleep_count(&self) -> usize {
        self.asleep
    }

    fn look_count(&self) -> usize {
        self.looks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> ConcreteWorld {
        let inst = Instance::new(vec![
            Point::new(0.5, 0.0),
            Point::new(0.0, 0.9),
            Point::new(2.0, 2.0),
        ]);
        ConcreteWorld::new(&inst)
    }

    #[test]
    fn look_sees_only_within_unit_distance() {
        let mut w = world();
        let seen = w.look(Point::ORIGIN, 0.0);
        let ids: Vec<RobotId> = seen.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![RobotId::sleeper(0), RobotId::sleeper(1)]);
        assert_eq!(w.look_count(), 1);
    }

    #[test]
    fn look_into_reuses_buffers_without_stale_entries() {
        let mut w = world();
        let mut buf = Vec::new();
        w.look_into(Point::ORIGIN, 0.0, &mut buf);
        assert_eq!(buf.len(), 2);
        w.look_into(Point::new(2.0, 2.0), 0.0, &mut buf);
        assert_eq!(buf.len(), 1, "buffer must be cleared between looks");
        assert_eq!(buf[0].id, RobotId::sleeper(2));
        assert_eq!(w.look_count(), 2);
    }

    #[test]
    fn woken_robots_disappear_from_later_looks() {
        let mut w = world();
        w.wake(RobotId::sleeper(0), 5.0).unwrap();
        // Before the wake they are still visible...
        assert_eq!(w.look(Point::ORIGIN, 4.0).len(), 2);
        // ...and invisible from the wake time onward.
        assert_eq!(w.look(Point::ORIGIN, 5.0).len(), 1);
        assert_eq!(w.look(Point::ORIGIN, 6.0).len(), 1);
    }

    #[test]
    fn double_wake_is_an_error() {
        let mut w = world();
        w.wake(RobotId::sleeper(2), 1.0).unwrap();
        assert_eq!(
            w.wake(RobotId::sleeper(2), 2.0),
            Err(SimError::AlreadyAwake(RobotId::sleeper(2)))
        );
    }

    #[test]
    fn status_and_counts() {
        let mut w = world();
        assert!(w.is_awake(RobotId::SOURCE));
        assert_eq!(w.wake_time(RobotId::SOURCE), Some(0.0));
        assert_eq!(w.asleep_count(), 3);
        assert!(!w.all_awake());
        for i in 0..3 {
            w.wake(RobotId::sleeper(i), 1.0).unwrap();
        }
        assert!(w.all_awake());
        assert_eq!(w.asleep_count(), 0);
    }

    #[test]
    fn counter_agrees_with_trait_default_scan() {
        let mut w = world();
        let scan = |w: &ConcreteWorld| {
            (0..=w.n())
                .filter(|&i| !w.is_awake(RobotId::from_index(i)))
                .count()
        };
        assert_eq!(w.asleep_count(), scan(&w));
        w.wake(RobotId::sleeper(1), 2.0).unwrap();
        assert_eq!(w.asleep_count(), scan(&w));
        assert_eq!(w.all_awake(), scan(&w) == 0);
    }

    #[test]
    fn positions_are_known() {
        let w = world();
        assert_eq!(w.position(RobotId::SOURCE), Some(Point::ORIGIN));
        assert_eq!(w.position(RobotId::sleeper(2)), Some(Point::new(2.0, 2.0)));
        assert_eq!(w.sleeper_pos(2), Point::new(2.0, 2.0));
        assert!(w.memory_bytes() > 0);
    }
}
