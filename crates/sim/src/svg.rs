//! Minimal SVG rendering of runs — regenerates the paper's schematic
//! figures (trajectories, separators, lower-bound constructions) without
//! external dependencies.

use crate::{Schedule, Timeline};
use freezetag_geometry::{Point, Rect};
use std::fmt::Write as _;

/// Rendering options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvgOptions {
    /// Output width in pixels (height follows the aspect ratio).
    pub width_px: f64,
    /// Margin around the drawing, in world units.
    pub margin: f64,
    /// Radius of position markers, in world units.
    pub marker: f64,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            width_px: 900.0,
            margin: 2.0,
            marker: 0.18,
        }
    }
}

struct Canvas {
    body: String,
    view: Rect,
    scale: f64,
}

impl Canvas {
    fn new(view: Rect, opts: &SvgOptions) -> Self {
        let view = Rect::from_corners(
            view.min() - Point::new(opts.margin, opts.margin),
            view.max() + Point::new(opts.margin, opts.margin),
        );
        let scale = opts.width_px / view.width().max(1e-9);
        Canvas {
            body: String::new(),
            view,
            scale,
        }
    }

    fn tx(&self, p: Point) -> (f64, f64) {
        // SVG y grows downward.
        (
            (p.x - self.view.min().x) * self.scale,
            (self.view.max().y - p.y) * self.scale,
        )
    }

    fn circle(&mut self, c: Point, r: f64, fill: &str, stroke: &str) {
        let (x, y) = self.tx(c);
        let _ = writeln!(
            self.body,
            r#"<circle cx="{x:.2}" cy="{y:.2}" r="{:.2}" fill="{fill}" stroke="{stroke}" stroke-width="1"/>"#,
            r * self.scale
        );
    }

    fn rect(&mut self, r: &Rect, stroke: &str, dash: bool) {
        let (x, y) = self.tx(Point::new(r.min().x, r.max().y));
        let dash_attr = if dash {
            r#" stroke-dasharray="6,4""#
        } else {
            ""
        };
        let _ = writeln!(
            self.body,
            r#"<rect x="{x:.2}" y="{y:.2}" width="{:.2}" height="{:.2}" fill="none" stroke="{stroke}" stroke-width="1"{dash_attr}/>"#,
            r.width() * self.scale,
            r.height() * self.scale
        );
    }

    fn polyline(&mut self, pts: impl Iterator<Item = Point>, stroke: &str, width: f64) {
        let coords: Vec<String> = pts
            .map(|p| {
                let (x, y) = self.tx(p);
                format!("{x:.2},{y:.2}")
            })
            .collect();
        if coords.len() < 2 {
            return;
        }
        let _ = writeln!(
            self.body,
            r#"<polyline points="{}" fill="none" stroke="{stroke}" stroke-width="{width}" stroke-opacity="0.7"/>"#,
            coords.join(" ")
        );
    }

    fn finish(self, opts: &SvgOptions) -> String {
        let h = self.view.height() * self.scale;
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{h:.0}\" \
             viewBox=\"0 0 {:.0} {h:.0}\">\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n{}</svg>\n",
            opts.width_px, opts.width_px, self.body
        )
    }
}

fn palette(i: usize) -> String {
    // Evenly spaced hues; fixed saturation/lightness.
    format!("hsl({}, 70%, 45%)", (i * 47) % 360)
}

/// Renders an instance plus (optionally) the trajectories of a finished
/// run. `highlight_rects` are drawn dashed — pass sub-squares or
/// separator rectangles to reproduce the phase figures.
pub fn render_run(
    source: Point,
    positions: &[Point],
    schedule: Option<&Schedule>,
    highlight_rects: &[Rect],
    opts: &SvgOptions,
) -> String {
    let mut all = vec![source];
    all.extend_from_slice(positions);
    if let Some(s) = schedule {
        for tl in s.timelines() {
            all.extend(tl.segments().iter().map(|seg| seg.to));
        }
    }
    for r in highlight_rects {
        all.push(r.min());
        all.push(r.max());
    }
    let view = Rect::bounding(all.iter().copied()).unwrap_or(Rect::with_size(source, 1.0, 1.0));
    let mut canvas = Canvas::new(view, opts);
    for r in highlight_rects {
        canvas.rect(r, "#888", true);
    }
    if let Some(s) = schedule {
        for (i, tl) in s.timelines().enumerate() {
            let color = palette(i);
            render_timeline(&mut canvas, tl, &color);
        }
    }
    for p in positions {
        canvas.circle(*p, opts.marker, "#444", "#000");
    }
    canvas.circle(source, opts.marker * 1.5, "#d22", "#800");
    canvas.finish(opts)
}

fn render_timeline(canvas: &mut Canvas, tl: &Timeline, color: &str) {
    let pts = std::iter::once(tl.start_pos()).chain(tl.segments().iter().map(|s| s.to));
    canvas.polyline(pts, color, 1.2);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConcreteWorld, RobotId, Sim};
    use freezetag_instances::Instance;

    #[test]
    fn renders_instance_only() {
        let svg = render_run(
            Point::ORIGIN,
            &[Point::new(1.0, 1.0), Point::new(-2.0, 0.5)],
            None,
            &[],
            &SvgOptions::default(),
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<circle").count(), 3);
    }

    #[test]
    fn renders_run_with_trajectories_and_rects() {
        let inst = Instance::new(vec![Point::new(1.0, 0.0)]);
        let mut sim = Sim::new(ConcreteWorld::new(&inst));
        sim.move_to(RobotId::SOURCE, Point::new(1.0, 0.0));
        sim.wake(RobotId::SOURCE, RobotId::sleeper(0));
        let (_, schedule, _) = sim.into_parts();
        let rects = [Rect::with_size(Point::new(-1.0, -1.0), 3.0, 3.0)];
        let svg = render_run(
            Point::ORIGIN,
            inst.positions(),
            Some(&schedule),
            &rects,
            &SvgOptions::default(),
        );
        assert!(svg.contains("<polyline"));
        assert!(svg.contains("stroke-dasharray"));
    }

    #[test]
    fn degenerate_view_does_not_panic() {
        let svg = render_run(Point::ORIGIN, &[], None, &[], &SvgOptions::default());
        assert!(svg.contains("<svg"));
    }
}
