use std::fmt;

/// Identifier of a robot in a simulation.
///
/// Index 0 is the source `s`; index `i + 1` is the initially-sleeping robot
/// whose position is `instance.positions()[i]`. The paper notes robots can
/// name themselves by their initial position once awake; a dense index is
/// the simulation equivalent.
///
/// # Example
///
/// ```
/// use freezetag_sim::RobotId;
/// assert!(RobotId::SOURCE.is_source());
/// let r = RobotId::sleeper(3);
/// assert_eq!(r.index(), 4);
/// assert_eq!(r.sleeper_index(), Some(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RobotId(usize);

impl RobotId {
    /// The source robot `s`.
    pub const SOURCE: RobotId = RobotId(0);

    /// The id of the `i`-th initially-sleeping robot (0-based).
    pub const fn sleeper(i: usize) -> RobotId {
        RobotId(i + 1)
    }

    /// Constructs from a dense index (0 = source).
    pub const fn from_index(i: usize) -> RobotId {
        RobotId(i)
    }

    /// Dense index (0 = source).
    pub const fn index(self) -> usize {
        self.0
    }

    /// Whether this is the source.
    pub const fn is_source(self) -> bool {
        self.0 == 0
    }

    /// The sleeping-robot index, or `None` for the source.
    pub const fn sleeper_index(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0 - 1)
        }
    }
}

impl fmt::Display for RobotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_source() {
            write!(f, "s")
        } else {
            write!(f, "r{}", self.0 - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_and_sleepers() {
        assert!(RobotId::SOURCE.is_source());
        assert_eq!(RobotId::SOURCE.sleeper_index(), None);
        assert_eq!(RobotId::sleeper(0).index(), 1);
        assert_eq!(RobotId::sleeper(5).sleeper_index(), Some(5));
        assert_eq!(RobotId::from_index(3), RobotId::sleeper(2));
    }

    #[test]
    fn ordering_follows_index() {
        assert!(RobotId::SOURCE < RobotId::sleeper(0));
        assert!(RobotId::sleeper(1) < RobotId::sleeper(2));
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", RobotId::SOURCE), "s");
        assert_eq!(format!("{}", RobotId::sleeper(7)), "r7");
    }
}
