//! Per-robot event-driven execution — robots as autonomous programs.
//!
//! The main drivers in `freezetag-core` orchestrate robots from a global
//! vantage point (fork/join over teams) while the restricted
//! [`WorldView`] keeps them honest about *information*.
//! This module closes the remaining gap for *control*: a [`RobotProgram`]
//! is a state machine owned by a single robot, which only ever sees its
//! own clock, its own position, its snapshots, and the identities of
//! co-located robots — exactly the paper's Look-Compute-Move robot. The
//! [`EventSim`] engine schedules all programs on one event queue and
//! records the same [`Schedule`] the validator checks.
//!
//! `freezetag-core` ships `AGrid` in both styles and the test-suite checks
//! the two produce the same makespan — evidence that the orchestrated
//! drivers emit schedules genuinely realizable by distributed robots.

use crate::{RobotId, Schedule, Sighting, WakeEvent, WorldView};
use freezetag_geometry::Point;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// What a robot decides to do next (the "Move" of Look-Compute-Move;
/// `Look` is the explicit snapshot action, as the paper's snapshots are
/// discrete).
pub enum Action {
    /// Move in a straight line at unit speed.
    MoveTo(Point),
    /// Wait at the current position until an absolute time (robots share
    /// the global clock). Past times complete immediately.
    WaitUntil(f64),
    /// Take a unit-vision snapshot; the result arrives in the next
    /// [`StepContext::sightings`].
    Look,
    /// Set this robot's visible light (the paper equips robots with a
    /// status light observable by co-located robots; Section 1.2).
    /// Instantaneous; the next step follows immediately.
    SetLight(u64),
    /// Wake the co-located sleeping robot `target`, installing `program`
    /// as its behaviour (co-located robots may exchange state — the
    /// program *is* the handed-over state).
    Wake {
        /// The sleeping robot to wake (must be co-located).
        target: RobotId,
        /// The behaviour the woken robot starts executing immediately.
        program: Box<dyn RobotProgram>,
    },
    /// Stop forever.
    Halt,
}

/// Per-step observation handed to a program: strictly local information.
pub struct StepContext<'a> {
    /// The robot's own id (self-naming by initial position is the paper's
    /// convention; a dense id is the simulation equivalent).
    pub id: RobotId,
    /// Global clock.
    pub now: f64,
    /// Own position.
    pub pos: Point,
    /// Result of the immediately preceding [`Action::Look`], if any.
    pub sightings: Option<&'a [Sighting]>,
    /// Robots co-located right now (halted ones included — a finished
    /// robot still physically sits there), ascending by id, each with its
    /// visible light. Co-location is the paper's communication primitive.
    pub colocated: &'a [(RobotId, u64)],
}

/// A robot behaviour: called once when activated (with `sightings = None`)
/// and then once after each completed action.
pub trait RobotProgram {
    /// Decide the next action.
    fn step(&mut self, ctx: &StepContext<'_>) -> Action;
}

struct ActiveRobot {
    program: Box<dyn RobotProgram>,
    halted: bool,
    light: u64,
    /// Sightings captured by a just-completed Look, delivered on the next
    /// step.
    pending_sightings: Option<Vec<Sighting>>,
}

/// Discrete-event engine executing one [`RobotProgram`] per awake robot.
///
/// # Example
///
/// ```
/// use freezetag_geometry::Point;
/// use freezetag_instances::Instance;
/// use freezetag_sim::events::{Action, EventSim, RobotProgram, StepContext};
/// use freezetag_sim::{ConcreteWorld, WorldView};
///
/// /// Walk to a fixed point, look, wake whatever is there, halt.
/// struct GoWake(Point, bool);
/// impl RobotProgram for GoWake {
///     fn step(&mut self, ctx: &StepContext<'_>) -> Action {
///         if !self.1 {
///             self.1 = true;
///             return Action::MoveTo(self.0);
///         }
///         if let Some(seen) = ctx.sightings {
///             if let Some(s) = seen.iter().find(|s| s.pos.approx_eq(ctx.pos)) {
///                 return Action::Wake { target: s.id, program: Box::new(Idle) };
///             }
///             return Action::Halt;
///         }
///         Action::Look
///     }
/// }
/// struct Idle;
/// impl RobotProgram for Idle {
///     fn step(&mut self, _: &StepContext<'_>) -> Action { Action::Halt }
/// }
///
/// let inst = Instance::new(vec![Point::new(2.0, 0.0)]);
/// let mut sim = EventSim::new(ConcreteWorld::new(&inst));
/// sim.run(Box::new(GoWake(Point::new(2.0, 0.0), false)));
/// assert!(sim.world().all_awake());
/// assert_eq!(sim.schedule().makespan(), 2.0);
/// ```
pub struct EventSim<W> {
    world: W,
    schedule: Schedule,
    robots: Vec<Option<ActiveRobot>>,
    // Min-heap of (time, robot) — ties resolved by robot id for
    // determinism. Times are ordered through total_cmp wrapped in a
    // sortable integer representation.
    queue: BinaryHeap<Reverse<(u64, usize)>>,
    steps: usize,
}

/// Monotone map from non-negative finite f64 to u64 preserving order.
fn time_key(t: f64) -> u64 {
    debug_assert!(t >= 0.0 && t.is_finite(), "event times must be >= 0");
    t.to_bits()
}

impl<W: WorldView> EventSim<W> {
    /// Creates an engine over a world; only the source is active at first.
    pub fn new(world: W) -> Self {
        let n = world.n();
        let mut schedule = Schedule::new(n);
        schedule.activate(RobotId::SOURCE, 0.0, world.source_pos());
        let mut robots: Vec<Option<ActiveRobot>> = Vec::with_capacity(n + 1);
        robots.resize_with(n + 1, || None);
        EventSim {
            world,
            schedule,
            robots,
            queue: BinaryHeap::new(),
            steps: 0,
        }
    }

    /// Read access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// The schedule recorded so far.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Consumes the engine, returning world and schedule.
    pub fn into_parts(self) -> (W, Schedule) {
        (self.world, self.schedule)
    }

    /// Number of program steps executed.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Installs the source's program and runs every robot to completion
    /// (until all programs halt and the queue drains).
    ///
    /// # Panics
    ///
    /// Panics on model violations (waking from a distance, waking an awake
    /// robot, moving a halted robot's program logic astray) — algorithm
    /// bugs, exactly like the orchestrated driver.
    pub fn run(&mut self, source_program: Box<dyn RobotProgram>) {
        self.robots[RobotId::SOURCE.index()] = Some(ActiveRobot {
            program: source_program,
            halted: false,
            light: 0,
            pending_sightings: None,
        });
        self.queue
            .push(Reverse((time_key(0.0), RobotId::SOURCE.index())));
        while let Some(Reverse((_, idx))) = self.queue.pop() {
            let robot = RobotId::from_index(idx);
            if self.robots[idx].as_ref().is_none_or(|r| r.halted) {
                continue;
            }
            self.step_robot(robot);
        }
    }

    fn colocated_at(&self, me: RobotId, pos: Point, now: f64) -> Vec<(RobotId, u64)> {
        let mut out = Vec::new();
        for (i, slot) in self.robots.iter().enumerate() {
            let id = RobotId::from_index(i);
            if id == me {
                continue;
            }
            let Some(active) = slot else { continue };
            if let Some(tl) = self.schedule.timeline(id) {
                if tl.position_at(now).dist(pos) <= freezetag_geometry::EPS {
                    out.push((id, active.light));
                }
            }
        }
        out
    }

    fn step_robot(&mut self, robot: RobotId) {
        self.steps += 1;
        let (now, pos) = {
            let tl = self.schedule.timeline(robot).expect("active robot");
            (tl.current_time(), tl.current_pos())
        };
        let colocated = self.colocated_at(robot, pos, now);
        let sightings = self.robots[robot.index()]
            .as_mut()
            .expect("active robot")
            .pending_sightings
            .take();
        let action = {
            let ctx = StepContext {
                id: robot,
                now,
                pos,
                sightings: sightings.as_deref(),
                colocated: &colocated,
            };
            self.robots[robot.index()]
                .as_mut()
                .expect("active robot")
                .program
                .step(&ctx)
        };
        match action {
            Action::MoveTo(dest) => {
                let arrival = self.schedule.timeline_mut(robot).move_to(dest);
                self.queue.push(Reverse((time_key(arrival), robot.index())));
            }
            Action::WaitUntil(t) => {
                self.schedule.timeline_mut(robot).wait_until(t);
                let at = self
                    .schedule
                    .timeline(robot)
                    .expect("active")
                    .current_time();
                self.queue.push(Reverse((time_key(at), robot.index())));
            }
            Action::SetLight(light) => {
                self.robots[robot.index()]
                    .as_mut()
                    .expect("active robot")
                    .light = light;
                self.queue.push(Reverse((time_key(now), robot.index())));
            }
            Action::Look => {
                let seen = self.world.look(pos, now);
                self.robots[robot.index()]
                    .as_mut()
                    .expect("active robot")
                    .pending_sightings = Some(seen);
                self.queue.push(Reverse((time_key(now), robot.index())));
            }
            Action::Wake { target, program } => {
                let tpos = self
                    .world
                    .position(target)
                    .unwrap_or_else(|| panic!("waking undiscovered robot {target}"));
                assert!(
                    tpos.dist(pos) <= 1e-6,
                    "robot {robot} tried to wake {target} from distance {}",
                    tpos.dist(pos)
                );
                self.world
                    .wake(target, now)
                    .unwrap_or_else(|e| panic!("wake failed: {e}"));
                self.schedule.activate(target, now, tpos);
                self.schedule.record_wake(WakeEvent {
                    waker: robot,
                    target,
                    time: now,
                    pos: tpos,
                });
                self.robots[target.index()] = Some(ActiveRobot {
                    program,
                    halted: false,
                    light: 0,
                    pending_sightings: None,
                });
                self.queue.push(Reverse((time_key(now), target.index())));
                self.queue.push(Reverse((time_key(now), robot.index())));
            }
            Action::Halt => {
                self.robots[robot.index()]
                    .as_mut()
                    .expect("active robot")
                    .halted = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConcreteWorld;
    use freezetag_instances::Instance;

    /// Chain program: look, wake anything here, walk right one unit,
    /// repeat `hops` times.
    struct Walker {
        hops: usize,
        looked: bool,
    }

    impl RobotProgram for Walker {
        fn step(&mut self, ctx: &StepContext<'_>) -> Action {
            if !self.looked {
                self.looked = true;
                return Action::Look;
            }
            if let Some(seen) = ctx.sightings {
                if let Some(s) = seen.iter().find(|s| s.pos.approx_eq(ctx.pos)) {
                    return Action::Wake {
                        target: s.id,
                        program: Box::new(Walker {
                            hops: self.hops,
                            looked: false,
                        }),
                    };
                }
            }
            if self.hops == 0 {
                return Action::Halt;
            }
            self.hops -= 1;
            self.looked = false;
            Action::MoveTo(ctx.pos + Point::new(1.0, 0.0))
        }
    }

    #[test]
    fn walker_wakes_a_line_and_validates() {
        let pts: Vec<Point> = (1..=4).map(|i| Point::new(i as f64, 0.0)).collect();
        let inst = Instance::new(pts);
        let mut sim = EventSim::new(ConcreteWorld::new(&inst));
        sim.run(Box::new(Walker {
            hops: 4,
            looked: false,
        }));
        assert!(sim.world().all_awake());
        let (_, schedule) = sim.into_parts();
        assert_eq!(schedule.wakes().len(), 4);
        assert_eq!(schedule.makespan(), 4.0);
        crate::validate(
            &schedule,
            Point::ORIGIN,
            inst.positions(),
            &crate::ValidationOptions::default(),
        )
        .expect("event schedule validates");
    }

    /// Two robots gather at a point and check they see each other.
    struct Gatherer {
        target: Point,
        state: u8,
        partner_seen: std::rc::Rc<std::cell::Cell<bool>>,
    }

    impl RobotProgram for Gatherer {
        fn step(&mut self, ctx: &StepContext<'_>) -> Action {
            match self.state {
                0 => {
                    self.state = 1;
                    Action::MoveTo(self.target)
                }
                1 => {
                    self.state = 2;
                    Action::WaitUntil(100.0)
                }
                _ => {
                    if !ctx.colocated.is_empty() {
                        self.partner_seen.set(true);
                    }
                    Action::Halt
                }
            }
        }
    }

    #[test]
    fn colocation_is_visible_to_programs() {
        let inst = Instance::new(vec![Point::new(0.5, 0.0)]);
        let seen = std::rc::Rc::new(std::cell::Cell::new(false));
        // Source wakes the nearby robot, both gather at (3, 3), then check
        // co-location.
        struct Starter {
            state: u8,
            flag: std::rc::Rc<std::cell::Cell<bool>>,
        }
        impl RobotProgram for Starter {
            fn step(&mut self, ctx: &StepContext<'_>) -> Action {
                match self.state {
                    0 => {
                        self.state = 1;
                        Action::MoveTo(Point::new(0.5, 0.0))
                    }
                    1 => {
                        self.state = 2;
                        Action::Look
                    }
                    2 => {
                        self.state = 3;
                        let s = ctx.sightings.unwrap()[0];
                        Action::Wake {
                            target: s.id,
                            program: Box::new(Gatherer {
                                target: Point::new(3.0, 3.0),
                                state: 0,
                                partner_seen: self.flag.clone(),
                            }),
                        }
                    }
                    3 => {
                        self.state = 4;
                        Action::MoveTo(Point::new(3.0, 3.0))
                    }
                    4 => {
                        self.state = 5;
                        Action::WaitUntil(100.0)
                    }
                    _ => Action::Halt,
                }
            }
        }
        let mut sim = EventSim::new(ConcreteWorld::new(&inst));
        sim.run(Box::new(Starter {
            state: 0,
            flag: seen.clone(),
        }));
        assert!(sim.world().all_awake());
        assert!(seen.get(), "gatherer never saw its partner");
    }

    #[test]
    fn halted_robots_stop_consuming_events() {
        let inst = Instance::new(vec![Point::new(50.0, 50.0)]);
        struct Stop;
        impl RobotProgram for Stop {
            fn step(&mut self, _: &StepContext<'_>) -> Action {
                Action::Halt
            }
        }
        let mut sim = EventSim::new(ConcreteWorld::new(&inst));
        sim.run(Box::new(Stop));
        assert_eq!(sim.steps(), 1);
        assert!(!sim.world().all_awake());
    }
}
