//! Per-robot event-driven execution — robots as autonomous programs.
//!
//! The main drivers in `freezetag-core` orchestrate robots from a global
//! vantage point (fork/join over teams) while the restricted
//! [`WorldView`] keeps them honest about *information*.
//! This module closes the remaining gap for *control*: a [`RobotProgram`]
//! is a state machine owned by a single robot, which only ever sees its
//! own clock, its own position, its snapshots, and the identities of
//! co-located robots — exactly the paper's Look-Compute-Move robot. The
//! [`EventSim`] engine schedules all programs on one event queue and
//! records through any replay-capable [`Recorder`] — the default
//! [`FullRecorder`] yields the same [`Schedule`] the validator checks,
//! while [`EventSim::with_compressed`] records block-compressed
//! trajectories for the streaming validator; an attached
//! [`ParPool`] ([`EventSim::with_pool`]) fans the per-step co-location
//! scan out over cores deterministically.
//!
//! `freezetag-core` ships `AGrid` in both styles and the test-suite checks
//! the two produce the same makespan — evidence that the orchestrated
//! drivers emit schedules genuinely realizable by distributed robots.

use crate::record::{FullRecorder, Recorder, ReplayRecorder};
use crate::{CompressedRecorder, ParPool, RobotId, Schedule, Sighting, WakeEvent, WorldView};
use freezetag_geometry::Point;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Robot slots per co-location scan batch on the pooled path.
const COLOC_BATCH: usize = 512;
/// Minimum robot count before the co-location scan fans out over the
/// pool — below this the spawn overhead exceeds the scan.
const PAR_COLOC_MIN: usize = 1024;

/// What a robot decides to do next (the "Move" of Look-Compute-Move;
/// `Look` is the explicit snapshot action, as the paper's snapshots are
/// discrete).
pub enum Action {
    /// Move in a straight line at unit speed.
    MoveTo(Point),
    /// Wait at the current position until an absolute time (robots share
    /// the global clock). Past times complete immediately.
    WaitUntil(f64),
    /// Take a unit-vision snapshot; the result arrives in the next
    /// [`StepContext::sightings`].
    Look,
    /// Set this robot's visible light (the paper equips robots with a
    /// status light observable by co-located robots; Section 1.2).
    /// Instantaneous; the next step follows immediately.
    SetLight(u64),
    /// Wake the co-located sleeping robot `target`, installing `program`
    /// as its behaviour (co-located robots may exchange state — the
    /// program *is* the handed-over state).
    Wake {
        /// The sleeping robot to wake (must be co-located).
        target: RobotId,
        /// The behaviour the woken robot starts executing immediately.
        program: Box<dyn RobotProgram>,
    },
    /// Stop forever.
    Halt,
}

/// Per-step observation handed to a program: strictly local information.
pub struct StepContext<'a> {
    /// The robot's own id (self-naming by initial position is the paper's
    /// convention; a dense id is the simulation equivalent).
    pub id: RobotId,
    /// Global clock.
    pub now: f64,
    /// Own position.
    pub pos: Point,
    /// Result of the immediately preceding [`Action::Look`], if any.
    pub sightings: Option<&'a [Sighting]>,
    /// Robots co-located right now (halted ones included — a finished
    /// robot still physically sits there), ascending by id, each with its
    /// visible light. Co-location is the paper's communication primitive.
    pub colocated: &'a [(RobotId, u64)],
}

/// A robot behaviour: called once when activated (with `sightings = None`)
/// and then once after each completed action.
pub trait RobotProgram {
    /// Decide the next action.
    fn step(&mut self, ctx: &StepContext<'_>) -> Action;
}

/// Discrete-event engine executing one [`RobotProgram`] per awake robot.
///
/// # Example
///
/// ```
/// use freezetag_geometry::Point;
/// use freezetag_instances::Instance;
/// use freezetag_sim::events::{Action, EventSim, RobotProgram, StepContext};
/// use freezetag_sim::{ConcreteWorld, WorldView};
///
/// /// Walk to a fixed point, look, wake whatever is there, halt.
/// struct GoWake(Point, bool);
/// impl RobotProgram for GoWake {
///     fn step(&mut self, ctx: &StepContext<'_>) -> Action {
///         if !self.1 {
///             self.1 = true;
///             return Action::MoveTo(self.0);
///         }
///         if let Some(seen) = ctx.sightings {
///             if let Some(s) = seen.iter().find(|s| s.pos.approx_eq(ctx.pos)) {
///                 return Action::Wake { target: s.id, program: Box::new(Idle) };
///             }
///             return Action::Halt;
///         }
///         Action::Look
///     }
/// }
/// struct Idle;
/// impl RobotProgram for Idle {
///     fn step(&mut self, _: &StepContext<'_>) -> Action { Action::Halt }
/// }
///
/// let inst = Instance::new(vec![Point::new(2.0, 0.0)]);
/// let mut sim = EventSim::new(ConcreteWorld::new(&inst));
/// sim.run(Box::new(GoWake(Point::new(2.0, 0.0), false)));
/// assert!(sim.world().all_awake());
/// assert_eq!(sim.schedule().makespan(), 2.0);
/// ```
pub struct EventSim<W, R = FullRecorder> {
    world: W,
    recorder: R,
    // Struct-of-arrays robot state, indexed by RobotId::index(). Programs
    // (`Box<dyn RobotProgram>`, not `Sync`) are kept apart from the plain
    // data so the pooled co-location scan can borrow the rest.
    programs: Vec<Option<Box<dyn RobotProgram>>>,
    halted: Vec<bool>,
    lights: Vec<u64>,
    /// Sightings captured by a just-completed Look, delivered on the next
    /// step.
    pending: Vec<Option<Vec<Sighting>>>,
    // Min-heap of (time, robot) — ties resolved by robot id for
    // determinism. Times are ordered through total_cmp wrapped in a
    // sortable integer representation.
    queue: BinaryHeap<Reverse<(u64, usize)>>,
    steps: usize,
    pool: ParPool,
}

/// Monotone map from non-negative finite f64 to u64 preserving order.
fn time_key(t: f64) -> u64 {
    debug_assert!(t >= 0.0 && t.is_finite(), "event times must be >= 0");
    t.to_bits()
}

impl<W: WorldView> EventSim<W> {
    /// Creates a fully-recorded engine over a world; only the source is
    /// active at first.
    pub fn new(world: W) -> Self {
        let n = world.n();
        EventSim::with_recorder(world, FullRecorder::with_capacity(n))
    }

    /// The schedule recorded so far (full recorder only).
    pub fn schedule(&self) -> &Schedule {
        self.recorder.schedule()
    }

    /// Consumes the engine, returning world and schedule.
    pub fn into_parts(self) -> (W, Schedule) {
        (self.world, self.recorder.into_schedule())
    }
}

impl<W: WorldView> EventSim<W, CompressedRecorder> {
    /// Creates an engine recording block-compressed trajectories —
    /// validated full records at ≤ 12 B/move, see
    /// [`CompressedRecorder`].
    pub fn with_compressed(world: W) -> Self {
        let n = world.n();
        EventSim::with_recorder(world, CompressedRecorder::with_capacity(n))
    }
}

impl<W: WorldView, R: ReplayRecorder + Sync> EventSim<W, R> {
    /// Creates an engine over an arbitrary replay-capable recorder (which
    /// must be fresh — no robot activated yet). The co-location scan needs
    /// [`ReplayRecorder::position_at`], which is why the constant-memory
    /// stats recorder cannot drive the event engine.
    pub fn with_recorder(world: W, mut recorder: R) -> Self {
        recorder.activate(RobotId::SOURCE, 0.0, world.source_pos());
        let n = world.n();
        let mut programs: Vec<Option<Box<dyn RobotProgram>>> = Vec::with_capacity(n + 1);
        programs.resize_with(n + 1, || None);
        EventSim {
            world,
            recorder,
            programs,
            halted: vec![false; n + 1],
            lights: vec![0; n + 1],
            pending: (0..n + 1).map(|_| None).collect(),
            queue: BinaryHeap::new(),
            steps: 0,
            pool: ParPool::sequential(),
        }
    }

    /// Attaches a [`ParPool`] for deterministic intra-run parallelism
    /// (builder style): the per-step co-location scan fans out over the
    /// pool's workers with an order-preserving merge, so results are
    /// bit-identical at any thread count. Default is sequential.
    #[must_use]
    pub fn with_pool(mut self, pool: ParPool) -> Self {
        self.pool = pool;
        self
    }

    /// Read access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Read access to the recorder.
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    /// Consumes the engine, returning world and recorder.
    pub fn into_recorder_parts(self) -> (W, R) {
        (self.world, self.recorder)
    }

    /// Number of program steps executed.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Installs the source's program and runs every robot to completion
    /// (until all programs halt and the queue drains).
    ///
    /// # Panics
    ///
    /// Panics on model violations (waking from a distance, waking an awake
    /// robot, moving a halted robot's program logic astray) — algorithm
    /// bugs, exactly like the orchestrated driver.
    pub fn run(&mut self, source_program: Box<dyn RobotProgram>) {
        self.programs[RobotId::SOURCE.index()] = Some(source_program);
        self.queue
            .push(Reverse((time_key(0.0), RobotId::SOURCE.index())));
        while let Some(Reverse((_, idx))) = self.queue.pop() {
            let robot = RobotId::from_index(idx);
            if self.programs[idx].is_none() || self.halted[idx] {
                continue;
            }
            self.step_robot(robot);
        }
    }

    fn colocated_at(&self, me: RobotId, pos: Point, now: f64) -> Vec<(RobotId, u64)> {
        let me_idx = me.index();
        let recorder = &self.recorder;
        let lights = &self.lights;
        let scan = |base: usize, count: usize| {
            let mut out = Vec::new();
            for (i, &light) in lights.iter().enumerate().skip(base).take(count) {
                if i == me_idx {
                    continue;
                }
                let id = RobotId::from_index(i);
                // position_at is None exactly for never-activated robots
                // (a robot has a program iff it was activated); halted
                // robots still physically sit there and stay visible.
                if let Some(p) = recorder.position_at(id, now) {
                    if p.dist(pos) <= freezetag_geometry::EPS {
                        out.push((id, light));
                    }
                }
            }
            out
        };
        let slots = self.halted.len();
        if self.pool.is_sequential() || slots < PAR_COLOC_MIN {
            return scan(0, slots);
        }
        // Pooled path: batches over the Sync per-robot arrays (programs,
        // the one non-Sync column, is untouched), order-preserving merge —
        // bit-identical to the sequential scan at any thread count.
        let parts = self
            .pool
            .map_batches(&self.halted, COLOC_BATCH, |b, chunk| {
                scan(b * COLOC_BATCH, chunk.len())
            });
        let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
        for p in parts {
            out.extend(p);
        }
        out
    }

    fn step_robot(&mut self, robot: RobotId) {
        self.steps += 1;
        let now = self.recorder.current_time(robot).expect("active robot");
        let pos = self.recorder.current_pos(robot).expect("active robot");
        let colocated = self.colocated_at(robot, pos, now);
        let sightings = self.pending[robot.index()].take();
        let action = {
            let ctx = StepContext {
                id: robot,
                now,
                pos,
                sightings: sightings.as_deref(),
                colocated: &colocated,
            };
            self.programs[robot.index()]
                .as_mut()
                .expect("active robot")
                .step(&ctx)
        };
        match action {
            Action::MoveTo(dest) => {
                let arrival = self.recorder.move_to(robot, dest);
                self.queue.push(Reverse((time_key(arrival), robot.index())));
            }
            Action::WaitUntil(t) => {
                self.recorder.wait_until(robot, t);
                let at = self.recorder.current_time(robot).expect("active");
                self.queue.push(Reverse((time_key(at), robot.index())));
            }
            Action::SetLight(light) => {
                self.lights[robot.index()] = light;
                self.queue.push(Reverse((time_key(now), robot.index())));
            }
            Action::Look => {
                let seen = self.world.look(pos, now);
                self.pending[robot.index()] = Some(seen);
                self.queue.push(Reverse((time_key(now), robot.index())));
            }
            Action::Wake { target, program } => {
                let tpos = self
                    .world
                    .position(target)
                    .unwrap_or_else(|| panic!("waking undiscovered robot {target}"));
                assert!(
                    tpos.dist(pos) <= 1e-6,
                    "robot {robot} tried to wake {target} from distance {}",
                    tpos.dist(pos)
                );
                self.world
                    .wake(target, now)
                    .unwrap_or_else(|e| panic!("wake failed: {e}"));
                self.recorder.activate(target, now, tpos);
                self.recorder.record_wake(WakeEvent {
                    waker: robot,
                    target,
                    time: now,
                    pos: tpos,
                });
                self.programs[target.index()] = Some(program);
                self.halted[target.index()] = false;
                self.lights[target.index()] = 0;
                self.pending[target.index()] = None;
                self.queue.push(Reverse((time_key(now), target.index())));
                self.queue.push(Reverse((time_key(now), robot.index())));
            }
            Action::Halt => {
                self.halted[robot.index()] = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConcreteWorld;
    use freezetag_instances::Instance;

    /// Chain program: look, wake anything here, walk right one unit,
    /// repeat `hops` times.
    struct Walker {
        hops: usize,
        looked: bool,
    }

    impl RobotProgram for Walker {
        fn step(&mut self, ctx: &StepContext<'_>) -> Action {
            if !self.looked {
                self.looked = true;
                return Action::Look;
            }
            if let Some(seen) = ctx.sightings {
                if let Some(s) = seen.iter().find(|s| s.pos.approx_eq(ctx.pos)) {
                    return Action::Wake {
                        target: s.id,
                        program: Box::new(Walker {
                            hops: self.hops,
                            looked: false,
                        }),
                    };
                }
            }
            if self.hops == 0 {
                return Action::Halt;
            }
            self.hops -= 1;
            self.looked = false;
            Action::MoveTo(ctx.pos + Point::new(1.0, 0.0))
        }
    }

    #[test]
    fn walker_wakes_a_line_and_validates() {
        let pts: Vec<Point> = (1..=4).map(|i| Point::new(i as f64, 0.0)).collect();
        let inst = Instance::new(pts);
        let mut sim = EventSim::new(ConcreteWorld::new(&inst));
        sim.run(Box::new(Walker {
            hops: 4,
            looked: false,
        }));
        assert!(sim.world().all_awake());
        let (_, schedule) = sim.into_parts();
        assert_eq!(schedule.wakes().len(), 4);
        assert_eq!(schedule.makespan(), 4.0);
        crate::validate(
            &schedule,
            Point::ORIGIN,
            inst.positions(),
            &crate::ValidationOptions::default(),
        )
        .expect("event schedule validates");
    }

    /// Two robots gather at a point and check they see each other.
    struct Gatherer {
        target: Point,
        state: u8,
        partner_seen: std::rc::Rc<std::cell::Cell<bool>>,
    }

    impl RobotProgram for Gatherer {
        fn step(&mut self, ctx: &StepContext<'_>) -> Action {
            match self.state {
                0 => {
                    self.state = 1;
                    Action::MoveTo(self.target)
                }
                1 => {
                    self.state = 2;
                    Action::WaitUntil(100.0)
                }
                _ => {
                    if !ctx.colocated.is_empty() {
                        self.partner_seen.set(true);
                    }
                    Action::Halt
                }
            }
        }
    }

    #[test]
    fn colocation_is_visible_to_programs() {
        let inst = Instance::new(vec![Point::new(0.5, 0.0)]);
        let seen = std::rc::Rc::new(std::cell::Cell::new(false));
        // Source wakes the nearby robot, both gather at (3, 3), then check
        // co-location.
        struct Starter {
            state: u8,
            flag: std::rc::Rc<std::cell::Cell<bool>>,
        }
        impl RobotProgram for Starter {
            fn step(&mut self, ctx: &StepContext<'_>) -> Action {
                match self.state {
                    0 => {
                        self.state = 1;
                        Action::MoveTo(Point::new(0.5, 0.0))
                    }
                    1 => {
                        self.state = 2;
                        Action::Look
                    }
                    2 => {
                        self.state = 3;
                        let s = ctx.sightings.unwrap()[0];
                        Action::Wake {
                            target: s.id,
                            program: Box::new(Gatherer {
                                target: Point::new(3.0, 3.0),
                                state: 0,
                                partner_seen: self.flag.clone(),
                            }),
                        }
                    }
                    3 => {
                        self.state = 4;
                        Action::MoveTo(Point::new(3.0, 3.0))
                    }
                    4 => {
                        self.state = 5;
                        Action::WaitUntil(100.0)
                    }
                    _ => Action::Halt,
                }
            }
        }
        let mut sim = EventSim::new(ConcreteWorld::new(&inst));
        sim.run(Box::new(Starter {
            state: 0,
            flag: seen.clone(),
        }));
        assert!(sim.world().all_awake());
        assert!(seen.get(), "gatherer never saw its partner");
    }

    #[test]
    fn compressed_event_run_matches_full_bitwise_and_validates() {
        let pts: Vec<Point> = (1..=4).map(|i| Point::new(i as f64, 0.0)).collect();
        let inst = Instance::new(pts);
        let mut full = EventSim::new(ConcreteWorld::new(&inst));
        full.run(Box::new(Walker {
            hops: 4,
            looked: false,
        }));
        let mut comp = EventSim::with_compressed(ConcreteWorld::new(&inst));
        comp.run(Box::new(Walker {
            hops: 4,
            looked: false,
        }));
        assert!(comp.world().all_awake());
        assert_eq!(full.steps(), comp.steps());
        let (_, schedule) = full.into_parts();
        let (_, rec) = comp.into_recorder_parts();
        assert_eq!(schedule.makespan().to_bits(), rec.makespan().to_bits());
        assert_eq!(
            schedule.completion_time().to_bits(),
            rec.completion_time().to_bits()
        );
        assert_eq!(
            schedule.total_energy().to_bits(),
            rec.total_energy().to_bits()
        );
        let flat = crate::validate(
            &schedule,
            Point::ORIGIN,
            inst.positions(),
            &crate::ValidationOptions::default(),
        )
        .expect("full validates");
        let streamed = crate::validate_compressed(
            &rec,
            Point::ORIGIN,
            inst.positions(),
            &crate::ValidationOptions::default(),
        )
        .expect("compressed validates");
        assert_eq!(flat, streamed);
    }

    #[test]
    fn pooled_colocation_scan_matches_sequential() {
        // 1200 robots in a tight cluster forces the pooled scan path
        // (above PAR_COLOC_MIN) while a twin run stays sequential; the
        // wake order — and therefore every recorded bit — must agree.
        let pts: Vec<Point> = (0..1200)
            .map(|i| Point::new(0.1 + (i % 40) as f64 * 0.02, 0.1 + (i / 40) as f64 * 0.02))
            .collect();
        let inst = Instance::new(pts);

        /// Wakes every sighted robot in id order, then halts.
        struct WakeAll {
            queue: Vec<Sighting>,
            looked: bool,
        }
        impl RobotProgram for WakeAll {
            fn step(&mut self, ctx: &StepContext<'_>) -> Action {
                if !self.looked {
                    self.looked = true;
                    return Action::Look;
                }
                if let Some(seen) = ctx.sightings {
                    self.queue = seen.to_vec();
                    self.queue.reverse();
                }
                match self.queue.last().copied() {
                    Some(next) if next.pos.dist(ctx.pos) > 1e-6 => Action::MoveTo(next.pos),
                    Some(next) => {
                        self.queue.pop();
                        Action::Wake {
                            target: next.id,
                            program: Box::new(WakeAll {
                                queue: Vec::new(),
                                looked: true,
                            }),
                        }
                    }
                    None => Action::Halt,
                }
            }
        }

        let run = |pool: ParPool| {
            let mut sim = EventSim::new(ConcreteWorld::new(&inst)).with_pool(pool);
            sim.run(Box::new(WakeAll {
                queue: Vec::new(),
                looked: false,
            }));
            let (_, schedule) = sim.into_parts();
            schedule
        };
        let seq = run(ParPool::sequential());
        let par = run(ParPool::new(4));
        assert_eq!(seq.wakes(), par.wakes());
        assert_eq!(seq.makespan().to_bits(), par.makespan().to_bits());
        assert_eq!(seq.total_energy().to_bits(), par.total_energy().to_bits());
    }

    #[test]
    fn halted_robots_stop_consuming_events() {
        let inst = Instance::new(vec![Point::new(50.0, 50.0)]);
        struct Stop;
        impl RobotProgram for Stop {
            fn step(&mut self, _: &StepContext<'_>) -> Action {
                Action::Halt
            }
        }
        let mut sim = EventSim::new(ConcreteWorld::new(&inst));
        sim.run(Box::new(Stop));
        assert_eq!(sim.steps(), 1);
        assert!(!sim.world().all_awake());
    }
}
