//! Deterministic intra-job data parallelism: a hand-rolled scoped-thread
//! pool over fixed-size batches.
//!
//! The experiment engine has always parallelized *across* jobs; this
//! module is what lets one 10⁶-robot job use more than one core without
//! giving up the workspace's byte-identical-output contract. The design
//! rests on one rule: **work is split into fixed-size batches in input
//! order, every batch is a pure function of its input slice, and the
//! per-batch outputs are concatenated in batch order** — never in
//! completion order. Thread scheduling then cannot influence any result
//! bit: `ParPool::new(1)`, `ParPool::new(4)` and `ParPool::new(64)`
//! produce identical output for identical input.
//!
//! [`ParPool`] deliberately owns no threads: it is a `Copy` configuration
//! value, and each [`ParPool::map_batches`] call spawns its workers with
//! [`std::thread::scope`] so borrowed inputs (the world's coordinate
//! arrays, a query slice) cross into workers without `Arc` or cloning.
//! Callers amortize the spawn cost by batching at coarse granularity —
//! e.g. one batch of sensing queries per wave *slot*, not per snapshot.
//!
//! No crates.io dependency is involved (mirroring the `vendor/` policy):
//! the pool is ~100 lines of `std`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Queries per batch on the batched-sensing path ([`crate::WorldView::
/// look_batch_into`]). Coarse enough that a batch outweighs the scoped
/// spawn cost, fine enough that 4–8 workers load-balance a slot.
pub const LOOK_BATCH: usize = 512;

/// Minimum query count before batched sensing fans out to threads;
/// below this the sequential path is faster than spawning workers.
pub const PAR_LOOK_MIN: usize = 2 * LOOK_BATCH;

/// Points per batch when parallelizing O(n) geometry passes (grid-index
/// key computation, radius scans) over 10⁵–10⁶-element arrays.
pub const POINT_BATCH: usize = 1 << 16;

/// Frontier robots per bucketing batch when the wave drivers group fresh
/// robots by square (cell-of-position is a couple of flops per robot, so
/// batches are large). Shared by `AGrid` and `AWave`.
pub const FRONTIER_BATCH: usize = 1 << 13;

/// A deterministic scoped-thread worker pool of a fixed width.
///
/// See the [module docs](self) for the determinism contract. The pool is
/// plumbed through [`crate::Sim`] (`Sim::with_pool`), the sensing layer
/// ([`crate::WorldView::look_batch_into`]) and the experiment engine's
/// `--sim-threads` axis.
///
/// # Example
///
/// ```
/// use freezetag_sim::ParPool;
///
/// let items: Vec<u64> = (0..10_000).collect();
/// let seq = ParPool::sequential().map_concat(&items, 256, |c| {
///     c.iter().map(|x| x * x).collect::<Vec<_>>()
/// });
/// let par = ParPool::new(4).map_concat(&items, 256, |c| {
///     c.iter().map(|x| x * x).collect::<Vec<_>>()
/// });
/// assert_eq!(seq, par); // batch order, not completion order
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParPool {
    threads: usize,
}

impl Default for ParPool {
    fn default() -> Self {
        ParPool::sequential()
    }
}

impl ParPool {
    /// A pool of exactly `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0 — user-facing layers (the `dftp` CLI, plan
    /// validation) reject 0 with a clean error before this is reached.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "ParPool needs at least one thread");
        ParPool { threads }
    }

    /// The single-threaded pool: every `map_batches` call runs inline, in
    /// batch order, on the calling thread.
    pub fn sequential() -> Self {
        ParPool { threads: 1 }
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this pool runs everything inline on the calling thread.
    pub fn is_sequential(&self) -> bool {
        self.threads == 1
    }

    /// Splits `items` into consecutive batches of `batch` elements (the
    /// last may be shorter), applies `f(batch_index, batch_slice)` to
    /// every batch, and returns the outputs **in batch order**.
    ///
    /// `f` must be a pure function of its arguments (plus shared read-only
    /// captures): batches run concurrently on up to [`ParPool::threads`]
    /// scoped workers, so any hidden mutable state would race, and any
    /// dependence on execution order would break the determinism contract.
    /// With one thread — or a single batch — everything runs inline.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is 0, and propagates panics from `f`.
    pub fn map_batches<T, U, F>(&self, items: &[T], batch: usize, f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &[T]) -> U + Sync,
    {
        assert!(batch >= 1, "batch size must be at least 1");
        let n_batches = items.len().div_ceil(batch);
        let chunk_of = |i: usize| &items[i * batch..((i + 1) * batch).min(items.len())];
        if self.threads == 1 || n_batches <= 1 {
            return (0..n_batches).map(|i| f(i, chunk_of(i))).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<U>>> = (0..n_batches).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..self.threads.min(n_batches) {
                s.spawn(|| loop {
                    // Claim batch indices through one shared counter: cheap
                    // dynamic load balancing, while the slot table keeps
                    // the output in batch order regardless of who finishes
                    // when.
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n_batches {
                        break;
                    }
                    let out = f(i, chunk_of(i));
                    *slots[i].lock().expect("batch slot poisoned") = Some(out);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("batch slot poisoned")
                    .expect("every claimed batch stores its output")
            })
            .collect()
    }

    /// [`ParPool::map_batches`] for batch functions that emit a list:
    /// concatenates the per-batch lists in batch order.
    pub fn map_concat<T, V, F>(&self, items: &[T], batch: usize, f: F) -> Vec<V>
    where
        T: Sync,
        V: Send,
        F: Fn(&[T]) -> Vec<V> + Sync,
    {
        let parts = self.map_batches(items, batch, |_, chunk| f(chunk));
        let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
        for p in parts {
            out.extend(p);
        }
        out
    }

    /// Deterministic parallel maximum of `f` over `items`, starting from
    /// `init`. `f64::max` is exactly associative and commutative over
    /// non-NaN inputs, so the batched reduction is bit-identical to a
    /// sequential left fold — this is the engine's radius-scan primitive.
    pub fn max_f64<T, F>(&self, items: &[T], batch: usize, init: f64, f: F) -> f64
    where
        T: Sync,
        F: Fn(&T) -> f64 + Sync,
    {
        self.map_batches(items, batch, |_, chunk| {
            chunk.iter().map(&f).fold(init, f64::max)
        })
        .into_iter()
        .fold(init, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_follow_batch_order_not_completion_order() {
        let items: Vec<usize> = (0..1000).collect();
        for threads in [1, 2, 4, 7] {
            let got = ParPool::new(threads).map_batches(&items, 64, |i, chunk| {
                // Make earlier batches slower so completion order inverts.
                if threads > 1 && i == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                (i, chunk.to_vec())
            });
            assert_eq!(got.len(), 16, "threads={threads}");
            for (i, (bi, chunk)) in got.iter().enumerate() {
                assert_eq!(*bi, i);
                assert_eq!(chunk[0], i * 64);
            }
        }
    }

    #[test]
    fn map_concat_is_thread_count_invariant() {
        let items: Vec<i64> = (0..5000).collect();
        let run = |threads| {
            ParPool::new(threads).map_concat(&items, 128, |c| {
                c.iter().map(|x| x * 3 - 1).collect::<Vec<_>>()
            })
        };
        let seq = run(1);
        assert_eq!(seq.len(), items.len());
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), seq, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_batch_inputs() {
        let pool = ParPool::new(4);
        let empty: Vec<u8> = Vec::new();
        assert!(pool.map_batches(&empty, 16, |_, c| c.len()).is_empty());
        let small = [1u8, 2, 3];
        assert_eq!(pool.map_batches(&small, 16, |_, c| c.len()), vec![3]);
    }

    #[test]
    fn max_f64_matches_sequential_fold() {
        let values: Vec<f64> = (0..10_001)
            .map(|i| ((i * 37) % 9973) as f64 * 0.5)
            .collect();
        let seq = values.iter().copied().fold(0.0, f64::max);
        for threads in [1, 2, 4] {
            let got = ParPool::new(threads).max_f64(&values, 1024, 0.0, |&v| v);
            assert_eq!(got.to_bits(), seq.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn accessors_and_default() {
        assert_eq!(ParPool::default(), ParPool::sequential());
        assert!(ParPool::sequential().is_sequential());
        let p = ParPool::new(6);
        assert_eq!(p.threads(), 6);
        assert!(!p.is_sequential());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        ParPool::new(0);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_panics() {
        ParPool::new(2).map_batches(&[1, 2, 3], 0, |_, c: &[i32]| c.len());
    }
}
