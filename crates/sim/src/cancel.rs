//! Cooperative cancellation and deadlines for long-running simulations.
//!
//! A [`CancelToken`] is a cheap, cloneable handle shared between a
//! controller (the engine worker loop, the serve layer's cancel endpoint)
//! and a running [`Sim`](crate::Sim). The sim polls the token at its
//! sensing checkpoints — every [`look_into`](crate::Sim::look_into),
//! [`look_many_into`](crate::Sim::look_many_into) and
//! [`wake`](crate::Sim::wake) — and, once the token fires, aborts the run
//! by unwinding with a [`Cancelled`] payload. The unwind uses
//! [`std::panic::resume_unwind`], which skips the panic hook, so a
//! cancelled job produces no stderr noise; the engine boundary catches the
//! payload with [`catch_cancel`] and maps it to an error value.
//!
//! Cancellation never changes results: a job either runs to completion
//! (bit-identical to an uncancelled run, since the polls are pure reads)
//! or produces no result at all.
//!
//! Two trigger paths share the token:
//!
//! * **explicit** — [`CancelToken::cancel`] raises an atomic flag; the
//!   next checkpoint observes it (a relaxed load, ~1 ns, checked on
//!   *every* checkpoint);
//! * **deadline** — [`CancelToken::with_deadline`] arms a wall-clock
//!   cutoff; because reading the clock is comparatively expensive the sim
//!   only re-checks it every [`DEADLINE_STRIDE`] checkpoints, then latches
//!   the flag so all clones observe the expiry.
//!
//! The default token ([`CancelToken::never`]) is inert and adds only a
//! predictable branch to the checkpoint, so uncancellable runs pay
//! essentially nothing.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many checkpoints pass between wall-clock deadline re-checks.
///
/// Explicit cancellation is observed on every checkpoint regardless; only
/// the `Instant::now()` call is amortised. At the ≥ 10⁵ looks/s of any
/// non-trivial run this bounds deadline latency well under the 1 s the
/// serve layer promises.
pub const DEADLINE_STRIDE: u32 = 1024;

#[derive(Debug)]
struct Inner {
    flag: AtomicBool,
    deadline: Option<Instant>,
}

/// Unwind payload identifying a cooperative cancellation (as opposed to an
/// algorithm-bug panic). See the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl Cancelled {
    /// Aborts the current job by unwinding with a [`Cancelled`] payload,
    /// bypassing the panic hook (no backtrace, no stderr output). Callers
    /// above [`catch_cancel`] never observe this as a panic.
    pub fn unwind() -> ! {
        resume_unwind(Box::new(Cancelled))
    }
}

/// A cheap, cloneable cancellation handle; see the [module docs](self).
///
/// # Example
///
/// ```
/// use freezetag_sim::CancelToken;
///
/// let token = CancelToken::new();
/// let watcher = token.clone();
/// assert!(!watcher.is_cancelled());
/// token.cancel();
/// assert!(watcher.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

impl CancelToken {
    /// An active token without a deadline: fires only on [`cancel`](Self::cancel).
    pub fn new() -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: None,
            })),
        }
    }

    /// An active token that additionally fires once `budget` wall-clock
    /// time has elapsed (measured from this call).
    pub fn with_deadline(budget: Duration) -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: Some(Instant::now() + budget),
            })),
        }
    }

    /// The inert token: never fires, costs one predictable branch per
    /// checkpoint. This is the default for every [`Sim`](crate::Sim).
    pub fn never() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; a no-op on [`never`](Self::never)
    /// tokens. Every clone observes the request at its next checkpoint.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.flag.store(true, Ordering::Relaxed);
        }
    }

    /// Whether the token has fired (explicitly or by deadline expiry).
    /// Reads the clock if a deadline is armed and the flag is not yet set.
    pub fn is_cancelled(&self) -> bool {
        self.should_stop(true)
    }

    /// The checkpoint predicate: `true` once the run must stop.
    /// `check_deadline` gates the `Instant::now()` call so hot loops can
    /// amortise it (see [`DEADLINE_STRIDE`]); the explicit flag is always
    /// consulted. A deadline observed as expired latches the flag.
    #[inline]
    pub fn should_stop(&self, check_deadline: bool) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        if inner.flag.load(Ordering::Relaxed) {
            return true;
        }
        if check_deadline {
            if let Some(deadline) = inner.deadline {
                if Instant::now() >= deadline {
                    inner.flag.store(true, Ordering::Relaxed);
                    return true;
                }
            }
        }
        false
    }
}

/// Runs `f`, converting a [`Cancelled`] unwind from a sim checkpoint into
/// `Err(Cancelled)`. Any other panic is propagated unchanged. This is the
/// engine-side boundary matching [`Cancelled::unwind`].
///
/// The closure is wrapped in [`AssertUnwindSafe`]: a cancelled job's
/// mutable state (worker-resident scratch, recorders) is discarded or
/// epoch-cleared by the caller, never observed.
pub fn catch_cancel<T>(f: impl FnOnce() -> T) -> Result<T, Cancelled> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => {
            let payload: Box<dyn Any + Send> = payload;
            if payload.downcast_ref::<Cancelled>().is_some() {
                Err(Cancelled)
            } else {
                resume_unwind(payload)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_token_never_fires() {
        let t = CancelToken::never();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(!t.is_cancelled());
        assert!(!t.should_stop(true));
    }

    #[test]
    fn cancel_is_visible_through_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!c.should_stop(false));
        t.cancel();
        assert!(c.should_stop(false));
        assert!(c.is_cancelled());
    }

    #[test]
    fn deadline_fires_and_latches() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        // The deadline is only consulted on deep checks...
        assert!(!t.should_stop(false));
        // ...where it latches the flag...
        assert!(t.should_stop(true));
        // ...after which even shallow checks observe it.
        assert!(t.should_stop(false));
    }

    #[test]
    fn generous_deadline_does_not_fire() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
    }

    #[test]
    fn catch_cancel_maps_the_unwind_payload() {
        let r = catch_cancel(|| {
            Cancelled::unwind();
        });
        assert_eq!(r, Err(Cancelled));
        let ok = catch_cancel(|| 7);
        assert_eq!(ok, Ok(7));
    }

    #[test]
    fn catch_cancel_propagates_other_panics() {
        let r = std::panic::catch_unwind(|| catch_cancel(|| panic!("algorithm bug")));
        assert!(r.is_err());
    }
}
