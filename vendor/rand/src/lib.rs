//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so this vendored crate
//! provides the (small) subset of the rand 0.8 API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over `f64`/integer ranges.
//!
//! The generator is SplitMix64 — statistically fine for instance
//! generation, deterministic for a given seed, and dependency-free. It is
//! NOT the same stream as upstream `StdRng` (ChaCha12), so seeds produce
//! different (but still fixed) instances than a crates.io build would.

use std::ops::{Range, RangeInclusive};

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Core entropy source: 64 uniform bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Uniform value over the type's full sampling domain
    /// (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types with a canonical uniform distribution (floats over `[0, 1)`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges a value can be uniformly sampled from.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is negligible for span << 2^64 and irrelevant
                // for test-instance generation.
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (API-compatible stand-in for
    /// rand's `StdRng`, not stream-compatible).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x: f64 = a.gen_range(-3.0..=3.0);
            let y: f64 = b.gen_range(-3.0..=3.0);
            assert_eq!(x, y);
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen_range(2.0..5.0);
            assert!((2.0..5.0).contains(&x));
            let n: usize = r.gen_range(3..10);
            assert!((3..10).contains(&n));
            let m: i64 = r.gen_range(-4..=4);
            assert!((-4..=4).contains(&m));
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_ne!(xs, ys);
    }
}
