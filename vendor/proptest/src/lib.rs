//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no access to crates.io, so this vendored crate
//! implements the subset of proptest used by the workspace's property
//! tests: `Strategy` with `prop_map`, range and tuple strategies,
//! `prop::collection::vec`, `ProptestConfig::with_cases`, and the
//! `proptest!` / `prop_assume!` / `prop_assert!` / `prop_assert_eq!`
//! macros.
//!
//! Differences from upstream: cases are drawn from a fixed per-test seed
//! (fully deterministic, no persisted failure file) and failing inputs are
//! reported but not shrunk.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::fmt;
use std::ops::Range;

/// Deterministic RNG handed to strategies by the [`proptest!`] runner.
pub struct TestRng(StdRng);

impl TestRng {
    /// One stream per (test name, case index): deterministic and
    /// independent across cases.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h ^ ((case as u64) << 32)))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values for which `f` returns `Some`, up to a bounded
    /// number of redraws (upstream proptest also gives up eventually).
    fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
        self,
        whence: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            f,
            whence,
        }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy adapter produced by [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..1000 {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map gave up after 1000 rejections: {}",
            self.whence
        );
    }
}

/// Uniform choice among boxed strategies; built by [`prop_oneof!`].
pub struct Union<T> {
    choices: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(choices: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
        Union { choices }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.choices.len());
        self.choices[idx].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, usize, u32, u64, i32, i64);

macro_rules! tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                $(let $v = $s.generate(rng);)+
                ($($v,)+)
            }
        }
    };
}

tuple_strategy!(A / a, B / b);
tuple_strategy!(A / a, B / b, C / c);
tuple_strategy!(A / a, B / b, C / c, D / d);

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Outcome of a single generated case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
        /// `prop_assert!`-family failure; the test panics.
        Fail(String),
    }
}

impl fmt::Debug for TestRng {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("TestRng")
    }
}

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{prop_oneof, Strategy, TestRng, Union};

    pub mod prop {
        pub use crate::collection;
    }
}

/// Declares deterministic property tests.
///
/// Each function body runs once per case inside a closure returning
/// `Result<(), TestCaseError>`; `prop_assume!` rejections skip the case,
/// assertion failures panic with the case number.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rejected: u32 = 0;
                for case in 0..cfg.cases {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(
                                let $arg = $crate::Strategy::generate(&($strat), &mut rng);
                            )+
                            $body
                            Ok(())
                        })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject(_)) => rejected += 1,
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest {} failed at case {case}: {msg}", stringify!($name));
                        }
                    }
                }
                assert!(
                    rejected < cfg.cases,
                    "proptest {}: every case rejected by prop_assume!",
                    stringify!($name)
                );
            }
        )*
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $(::std::boxed::Box::new($strat) as _),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vecs() -> impl Strategy<Value = Vec<(f64, f64)>> {
        prop::collection::vec((-1.0..1.0, -1.0..1.0), 1..8)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in -3.0f64..3.0, n in 1usize..10) {
            prop_assume!(n > 0);
            prop_assert!((-3.0..3.0).contains(&x), "x = {x}");
            prop_assert!(n < 10);
        }

        #[test]
        fn vec_strategy_sizes(v in small_vecs()) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            for (a, b) in v {
                prop_assert!((-1.0..1.0).contains(&a));
                prop_assert!((-1.0..1.0).contains(&b));
            }
        }

        #[test]
        fn prop_map_applies(len in prop::collection::vec((0.0..1.0, 0.0..1.0), 2..5)
            .prop_map(|v| v.len())) {
            prop_assert!((2..5).contains(&len));
            prop_assert_eq!(len, len);
            prop_assert_ne!(len, len + 1);
        }

        #[test]
        fn tuple_patterns_and_filter_map((a, b) in (0.0f64..4.0, 0usize..6)
            .prop_filter_map("b must be even", |(a, b)| {
                (b % 2 == 0).then_some((a, b))
            })) {
            prop_assert!(b % 2 == 0);
            prop_assert!((0.0..4.0).contains(&a));
        }

        #[test]
        fn oneof_unions_arms(v in prop_oneof![
            (0.0f64..1.0).prop_map(|_| -1i64),
            0i64..5,
        ]) {
            prop_assert!(v == -1i64 || (0i64..5).contains(&v));
        }
    }
}
