//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no access to crates.io, so this vendored crate
//! implements the subset of the criterion 0.5 API the workspace's benches
//! use: `Criterion`, `BenchmarkGroup` (with `sample_size`,
//! `bench_function`, `bench_with_input`, `finish`), `BenchmarkId`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is a plain wall-clock mean over `sample_size` iterations
//! after a short warm-up — adequate for relative tracking in CI logs, with
//! no statistics, plotting, or baseline persistence.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Re-export so benches may use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

const DEFAULT_SAMPLE_SIZE: usize = 100;

/// Identifier for one benchmark within a group: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Mean nanoseconds per iteration, recorded by `iter`.
    mean_ns: f64,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Short warm-up, then the timed samples.
        for _ in 0..self.samples.min(5) {
            std_black_box(f());
        }
        let start = Instant::now();
        for _ in 0..self.samples {
            std_black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.samples as f64;
    }
}

/// Top-level harness; collects groups and prints one line per benchmark.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, DEFAULT_SAMPLE_SIZE, f);
        self
    }
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples,
        mean_ns: 0.0,
    };
    f(&mut b);
    let mean = b.mean_ns;
    if mean >= 1e6 {
        println!("{label:<48} {:>12.3} ms/iter", mean / 1e6);
    } else if mean >= 1e3 {
        println!("{label:<48} {:>12.3} us/iter", mean / 1e3);
    } else {
        println!("{label:<48} {mean:>12.1} ns/iter");
    }
}

/// Mirrors criterion's macro: bundles bench functions into one runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirrors criterion's macro: `main` invoking each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut ran = 0usize;
        {
            let mut g = c.benchmark_group("smoke");
            g.sample_size(10);
            g.bench_function("add", |b| b.iter(|| black_box(1u64 + 1)));
            g.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &x| {
                b.iter(|| black_box(x * x))
            });
            ran += 2;
            g.finish();
        }
        c.bench_function("top_level", |b| b.iter(|| black_box(2u64.pow(10))));
        ran += 1;
        assert_eq!(ran, 3);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 42).id, "f/42");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
